// E4/E6/E7 — the worst-case ping-pong application (§7.2, §7.3):
//  * single-site throughput with and without yield() (paper: 166 vs 5
//    cycles/s, a factor-35 difference caused by busy-waiting away the
//    scheduling quantum);
//  * the two-site analytic bound (paper: ~9 cycles/s from component costs);
//  * Figure 7: two-site throughput as a function of the window Delta, with
//    and without yield().
#include <cstdio>
#include <iostream>

#include "src/trace/table.h"
#include "src/workload/pingpong.h"

namespace {

struct RunOut {
  double cycles_per_sec = 0;
  std::uint64_t packets = 0;
  bool completed = false;
};

RunOut Run(int sites, bool use_yield, msim::Duration window_us, int rounds) {
  msysv::WorldOptions opts;
  opts.protocol.default_window_us = window_us;
  msysv::World world(sites, opts);
  mwork::PingPongParams prm;
  prm.rounds = rounds;
  prm.use_yield = use_yield;
  prm.site_b = sites >= 2 ? 1 : 0;
  auto result = mwork::LaunchPingPong(world, prm);
  RunOut out;
  out.completed = world.RunUntil([&] { return result->completed(); }, 900 * msim::kSecond);
  out.cycles_per_sec = result->CyclesPerSecond();
  out.packets = world.network().stats().packets;
  return out;
}

}  // namespace

int main() {
  std::printf("E6 — single-site worst case (§7.2)\n\n");
  mtrace::TextTable single({"configuration", "cycles/s", "paper"});
  RunOut no_yield = Run(1, false, 0, 40);
  RunOut with_yield = Run(1, true, 0, 2000);
  single.AddRow({"busy-wait (no yield)", mtrace::TextTable::Num(no_yield.cycles_per_sec, 1),
                 "5"});
  single.AddRow({"with yield()", mtrace::TextTable::Num(with_yield.cycles_per_sec, 1), "166"});
  single.AddRow({"speedup", mtrace::TextTable::Num(
                                with_yield.cycles_per_sec / no_yield.cycles_per_sec, 1),
                 "35x"});
  single.Print(std::cout);

  std::printf("\nE7 — Figure 7: two remote processes, throughput vs Delta\n\n");
  mtrace::TextTable fig7(
      {"Delta (ticks)", "Delta (ms)", "yield (cycles/s)", "no yield (cycles/s)", "msgs/cycle"});
  const msim::Duration tick = mos::SchedulerConfig{}.tick_us;
  for (int dticks : {0, 1, 2, 3, 4, 6, 8, 10, 12}) {
    RunOut y = Run(2, true, dticks * tick, 40);
    RunOut n = Run(2, false, dticks * tick, 40);
    fig7.AddRow({mtrace::TextTable::Int(dticks),
                 mtrace::TextTable::Num(msim::ToMilliseconds(dticks * tick), 0),
                 mtrace::TextTable::Num(y.cycles_per_sec, 2),
                 mtrace::TextTable::Num(n.cycles_per_sec, 2),
                 mtrace::TextTable::Num(static_cast<double>(y.packets) / 40.0, 1)});
  }
  fig7.Print(std::cout);

  std::printf("\nN-site worst case (the paper's \"N-site version\", token rotation/s,\n");
  std::printf("Delta = 1 tick — at Delta=0 the token word thrash-storms beyond N=4):\n\n");
  mtrace::TextTable nsite({"sites", "rotations/s", "msgs/rotation"});
  for (int sites : {2, 3, 4, 6, 8}) {
    msysv::WorldOptions opts;
    opts.protocol.default_window_us = mos::SchedulerConfig{}.tick_us;
    msysv::World world(sites, opts);
    mwork::RingPingPongParams prm;
    prm.rounds = 12;
    auto r = mwork::LaunchRingPingPong(world, prm);
    world.RunUntil([&] { return r->completed(); }, 900 * msim::kSecond);
    nsite.AddRow({mtrace::TextTable::Int(sites),
                  mtrace::TextTable::Num(r->CyclesPerSecond(), 2),
                  mtrace::TextTable::Num(
                      static_cast<double>(world.network().stats().packets) / prm.rounds, 1)});
  }
  nsite.Print(std::cout);

  std::printf(
      "\npaper anchors: ~4.5 cycles/s at Delta=2 with yield (90%% of the 5/s bound);\n"
      "~50%% yield advantage at small Delta; curves meet near the scheduling quantum\n"
      "(Delta=6 ticks); throughput declines as Delta grows.\n");
  return 0;
}
