// E12 — Mirage vs. a Li/Hudak-style centralized-manager DSM (Appendix I)
// on identical substrate and cost model.
//
// The baseline has no window Delta, no read batching, and no Mirage
// optimizations; Mirage's Delta shelters a page holder under contention,
// which is precisely where the two systems diverge.
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/baseline/li_engine.h"
#include "src/trace/table.h"
#include "src/workload/pingpong.h"
#include "src/workload/readwriters.h"

namespace {

msysv::WorldOptions BaselineOptions() {
  msysv::WorldOptions opts;
  opts.backend_factory = [](mos::Kernel* k, mirage::SegmentRegistry* reg,
                            mtrace::Tracer* tr) -> std::unique_ptr<mmem::DsmBackend> {
    return std::make_unique<mbase::LiEngine>(k, reg, tr);
  };
  return opts;
}

struct Row {
  double pingpong_cps = 0;
  double readwriters_ops = 0;
  std::uint64_t packets = 0;
};

Row RunSuite(const msysv::WorldOptions& base_opts) {
  Row row;
  {
    msysv::World world(2, base_opts);
    mwork::PingPongParams prm;
    prm.rounds = 40;
    auto r = mwork::LaunchPingPong(world, prm);
    world.RunUntil([&] { return r->completed(); }, 600 * msim::kSecond);
    row.pingpong_cps = r->CyclesPerSecond();
    row.packets = world.network().stats().packets;
  }
  {
    msysv::World world(2, base_opts);
    mwork::ReadWritersParams prm;
    prm.iterations = 50000;
    auto r = mwork::LaunchReadWriters(world, prm);
    world.RunUntil([&] { return r->completed(); }, 600 * msim::kSecond);
    row.readwriters_ops = r->OpsPerSecond();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("E12 — Mirage vs Li/Hudak centralized-manager baseline\n\n");

  mtrace::TextTable t({"protocol", "ping-pong cycles/s", "ping-pong msgs", "read-writers ops/s"});

  Row li = RunSuite(BaselineOptions());
  t.AddRow({"Li/Hudak baseline", mtrace::TextTable::Num(li.pingpong_cps, 2),
            mtrace::TextTable::Int(static_cast<long long>(li.packets)),
            mtrace::TextTable::Num(li.readwriters_ops, 0)});

  for (int delta_ms : {0, 33, 100, 300}) {
    msysv::WorldOptions opts;
    opts.protocol.default_window_us = static_cast<msim::Duration>(delta_ms) * msim::kMillisecond;
    Row m = RunSuite(opts);
    t.AddRow({"Mirage, Delta=" + std::to_string(delta_ms) + "ms",
              mtrace::TextTable::Num(m.pingpong_cps, 2),
              mtrace::TextTable::Int(static_cast<long long>(m.packets)),
              mtrace::TextTable::Num(m.readwriters_ops, 0)});
  }
  t.Print(std::cout);
  std::printf(
      "\nexpected shape: comparable on the latency-bound ping-pong (both protocols move\n"
      "one page per half-cycle), Mirage ahead on contended read-writers once Delta gives\n"
      "the holder a useful possession window.\n");
  return 0;
}
