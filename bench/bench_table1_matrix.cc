// E9 — Table 1: "Page Operations for Read and Write Requests".
//
// Drives each row of the paper's state-transition matrix with a scripted
// three-site scenario and reports, from live protocol counters, whether the
// clock check fired (a refused invalidation under a long window) and what
// invalidation/downgrade action the clock site performed:
//
//   | Current | Incoming | Clock Check | Invalidation                    |
//   | Readers | Readers  | No          | No                              |
//   | Readers | Writer   | Yes         | Yes, possible upgrade           |
//   | Writer  | Readers  | Yes         | Downgrade writer to reader      |
//   | Writer  | Writer   | Yes         | Yes                             |
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/sysv/world.h"
#include "src/trace/table.h"

namespace {

using mos::Priority;
using mos::Process;
using msim::Task;

struct Probe {
  std::uint64_t clock_refusals = 0;   // wait replies + local window retries
  std::uint64_t invalidations = 0;    // copies dropped
  std::uint64_t downgrades = 0;       // writer kept a read copy
  std::uint64_t upgrades = 0;         // write granted without page transfer
  std::uint64_t page_transfers = 0;   // page-carrying messages
};

Probe Totals(msysv::World& w) {
  Probe t;
  for (int s = 0; s < w.site_count(); ++s) {
    const auto& st = w.engine(s)->stats();
    t.clock_refusals += st.wait_replies_sent + st.invalidation_retries;
    t.invalidations += st.local_invalidations;
    t.downgrades += st.downgrades_performed;
    t.upgrades += st.upgrades_received;
  }
  t.page_transfers = w.network().stats().large_packets;
  return t;
}

Probe Diff(const Probe& a, const Probe& b) {
  return Probe{b.clock_refusals - a.clock_refusals, b.invalidations - a.invalidations,
               b.downgrades - a.downgrades, b.upgrades - a.upgrades,
               b.page_transfers - a.page_transfers};
}

// A scripted step: run `fn` as a process at `site`, wait for completion.
void Step(msysv::World& w, int site, int shmid,
          std::function<Task<>(msysv::ShmSystem&, Process*, mmem::VAddr)> fn) {
  bool done = false;
  w.kernel(site).Spawn("step", Priority::kUser, [&, site, shmid](Process* p) -> Task<> {
    auto& shm = w.shm(site);
    mmem::VAddr base = shm.Shmat(p, shmid).value();
    co_await fn(shm, p, base);
    // Leave attached: scripted scenarios manage segment lifetime manually.
    done = true;
  });
  if (!w.RunUntil([&] { return done; }, 30 * msim::kSecond)) {
    std::fprintf(stderr, "step at site %d timed out\n", site);
  }
}

Task<> DoRead(msysv::ShmSystem& shm, Process* p, mmem::VAddr a) {
  (void)co_await shm.ReadWord(p, a);
}
Task<> DoWrite(msysv::ShmSystem& shm, Process* p, mmem::VAddr a) {
  co_await shm.WriteWord(p, a, 7);
}

struct Row {
  const char* current;
  const char* incoming;
  Probe probe;
};

}  // namespace

int main() {
  // A long window makes every required clock check observable as a refusal.
  const msim::Duration kWindow = 200 * msim::kMillisecond;
  std::vector<Row> rows;

  auto make_world = [&] {
    msysv::WorldOptions opts;
    opts.protocol.default_window_us = kWindow;
    return std::make_unique<msysv::World>(3, opts);
  };

  {  // Row 1: Readers <- Readers.
    auto w = make_world();
    int id = w->shm(0).Shmget(1, 512, true).value();
    Step(*w, 1, id, DoRead);  // readers = {1}
    Probe before = Totals(*w);
    Step(*w, 2, id, DoRead);  // incoming reader
    rows.push_back({"Readers", "Readers", Diff(before, Totals(*w))});
  }
  {  // Row 2: Readers <- Writer (new writer in the old read set: upgrade).
    auto w = make_world();
    int id = w->shm(0).Shmget(1, 512, true).value();
    Step(*w, 1, id, DoRead);
    Step(*w, 2, id, DoRead);  // readers = {1, 2}
    Probe before = Totals(*w);
    Step(*w, 2, id, DoWrite);  // reader 2 upgrades; reader 1 invalidated
    rows.push_back({"Readers", "Writer", Diff(before, Totals(*w))});
  }
  {  // Row 3: Writer <- Readers (downgrade).
    auto w = make_world();
    int id = w->shm(0).Shmget(1, 512, true).value();
    Step(*w, 1, id, DoWrite);  // writer = 1
    Probe before = Totals(*w);
    Step(*w, 2, id, DoRead);  // incoming reader
    rows.push_back({"Writer", "Readers", Diff(before, Totals(*w))});
  }
  {  // Row 4: Writer <- Writer.
    auto w = make_world();
    int id = w->shm(0).Shmget(1, 512, true).value();
    Step(*w, 1, id, DoWrite);
    Probe before = Totals(*w);
    Step(*w, 2, id, DoWrite);
    rows.push_back({"Writer", "Writer", Diff(before, Totals(*w))});
  }

  std::printf("E9 — Table 1 transitions, measured on live three-site scenarios\n");
  std::printf("(window Delta = %.0f ms, so every required clock check surfaces as a\n"
              " refused-then-retried invalidation)\n\n",
              msim::ToMilliseconds(kWindow));
  mtrace::TextTable t({"Current", "Incoming", "clock check", "invalidations", "downgrade",
                       "upgrade", "page transfers"});
  for (const Row& r : rows) {
    t.AddRow({r.current, r.incoming, r.probe.clock_refusals > 0 ? "yes" : "no",
              mtrace::TextTable::Int(r.probe.invalidations),
              mtrace::TextTable::Int(r.probe.downgrades),
              mtrace::TextTable::Int(r.probe.upgrades),
              mtrace::TextTable::Int(r.probe.page_transfers)});
  }
  t.Print(std::cout);
  std::printf(
      "\npaper Table 1: row 1 — no check, no invalidation; row 2 — check + invalidate\n"
      "(upgrade, no page moved); row 3 — check + downgrade; row 4 — check + invalidate.\n");
  return 0;
}
