#include "bench/map_queue_ref.h"

namespace mbench {

bool MapQueueRef::Cancel(EventId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->first.id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

bool MapQueueRef::PopAndFire() {
  auto it = queue_.begin();
  now_ = it->first.time;
  std::function<void()> fn = std::move(it->second);
  queue_.erase(it);
  ++processed_;
  fn();
  return true;
}

std::uint64_t MapQueueRef::Run(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stop_requested_ && n < max_events) {
    PopAndFire();
    ++n;
  }
  return n;
}

}  // namespace mbench
