// E10 — §7.2's test&set discussion: a lock word guards data on the same
// page; the lock holder writes the data while a remote tester spins on
// test&set (which needs a writable copy), so holder and tester thrash the
// page. The paper: "the use of Delta > 0 can be helpful to the writer in
// this situation", and overall "we recommend that the test&set instruction
// not be used because of its performance".
#include <cstdio>
#include <iostream>

#include "src/trace/table.h"
#include "src/workload/spinlock.h"

namespace {

struct Out {
  double sections_per_sec = 0;
  std::uint64_t page_transfers = 0;
  bool correct = false;
  bool completed = false;
};

Out Run(msim::Duration window_us) {
  msysv::WorldOptions opts;
  opts.protocol.default_window_us = window_us;
  msysv::World world(2, opts);
  mwork::SpinlockParams prm;
  prm.sections = 30;
  auto result = mwork::LaunchSpinlock(world, prm);
  Out out;
  out.completed = world.RunUntil([&] { return result->completed; }, 600 * msim::kSecond);
  out.sections_per_sec = result->SectionsPerSecond();
  out.page_transfers = world.network().stats().large_packets;
  out.correct = result->final_counter ==
                static_cast<std::uint64_t>(2 * prm.sections * prm.writes_per_section);
  return out;
}

}  // namespace

int main() {
  std::printf("E10 — test&set spinlock with lock and data on one page (§7.2)\n\n");
  mtrace::TextTable t({"Delta (ms)", "critical sections/s", "page transfers",
                       "mutual exclusion held"});
  for (int delta_ms : {0, 17, 33, 67, 100, 200, 400}) {
    Out o = Run(static_cast<msim::Duration>(delta_ms) * msim::kMillisecond);
    t.AddRow({mtrace::TextTable::Int(delta_ms), mtrace::TextTable::Num(o.sections_per_sec, 2),
              mtrace::TextTable::Int(static_cast<long long>(o.page_transfers)),
              o.correct ? "yes" : "NO"});
  }
  t.Print(std::cout);
  std::printf("\npaper: the remote tester forces the page away from the lock holder, which\n"
              "then write-faults to touch its own data or clear the lock; Delta > 0 shelters\n"
              "the holder (fewer transfers per section, higher throughput).\n");
  return 0;
}
