// E5 — Figure 6: the exact sequence of protocol messages for one cycle of
// the worst-case application, and the per-cycle message accounting of §7.2
// (paper: 9 messages per cycle — 6 short, 3 page-carrying — giving the
// ~109 ms/cycle raw bound).
#include <cstdio>
#include <map>
#include <string>
#include <iostream>

#include "src/trace/table.h"
#include "src/workload/pingpong.h"

int main() {
  msysv::WorldOptions opts;
  opts.enable_trace = true;
  opts.protocol.default_window_us = 0;
  msysv::World world(2, opts);
  mwork::PingPongParams prm;
  prm.rounds = 6;
  prm.use_yield = true;
  auto result = mwork::LaunchPingPong(world, prm);
  world.RunUntil([&] { return result->completed(); }, 60 * msim::kSecond);

  // Count messages over the steady-state cycles (skip the warm-up cycle).
  const auto& events = world.tracer().events();
  std::map<std::string, int> by_kind;
  int shorts = 0;
  int larges = 0;
  msim::Time steady_start = result->start_time +
                            (result->end_time - result->start_time) / prm.rounds;
  for (const auto& e : events) {
    if (e.category == "msg" && e.time >= steady_start) {
      ++by_kind[e.detail.substr(0, e.detail.find(' '))];
      if (e.detail.find("(576 bytes)") != std::string::npos) {
        ++larges;
      } else {
        ++shorts;
      }
    }
  }
  double cycles = prm.rounds - 1;

  std::printf("E5 — message sequence for one steady-state worst-case cycle\n\n");
  std::printf("trace of one cycle (cycle 3 of %d):\n\n", prm.rounds);
  msim::Time c3_start = result->start_time +
                        2 * (result->end_time - result->start_time) / prm.rounds;
  msim::Time c3_end = result->start_time +
                      3 * (result->end_time - result->start_time) / prm.rounds;
  for (const auto& e : events) {
    if (e.time >= c3_start && e.time <= c3_end &&
        (e.category == "msg" || e.category == "fault" || e.category == "upgrade" ||
         e.category == "downgrade" || e.category == "invalidate")) {
      std::printf("  %9.3f ms  site %d  %-11s %s\n", msim::ToMilliseconds(e.time), e.site,
                  e.category.c_str(), e.detail.c_str());
    }
  }

  std::printf("\nper-cycle message accounting (average over %d steady cycles):\n\n",
              static_cast<int>(cycles));
  mtrace::TextTable table({"message kind", "per cycle"});
  for (const auto& [kind, count] : by_kind) {
    table.AddRow({kind, mtrace::TextTable::Num(count / cycles, 1)});
  }
  table.AddRow({"TOTAL", mtrace::TextTable::Num((shorts + larges) / cycles, 1)});
  table.AddRow({"short", mtrace::TextTable::Num(shorts / cycles, 1)});
  table.AddRow({"page-carrying", mtrace::TextTable::Num(larges / cycles, 1)});
  table.Print(std::cout);
  std::printf("\npaper: 9 messages per cycle — 6 short + 3 large (1024-byte) responses\n");
  std::printf("cycle time: %.1f ms (paper bound: ~109 ms/cycle -> ~9 cycles/s)\n",
              1000.0 / result->CyclesPerSecond());
  return 0;
}
