// Reference event queue for bench_sim_micro: a faithful replica of the
// pre-heap Simulator (std::map keyed (time, id), std::function payloads,
// linear-scan Cancel). The split mirrors the original exactly — Schedule
// inline in the header, Run/Cancel in their own translation unit — so the
// measured baseline has the same inlining profile the real thing had.
#ifndef BENCH_MAP_QUEUE_REF_H_
#define BENCH_MAP_QUEUE_REF_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "src/sim/time.h"

namespace mbench {

class MapQueueRef {
 public:
  using EventId = std::uint64_t;

  msim::Time Now() const { return now_; }

  EventId Schedule(msim::Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  EventId ScheduleAt(msim::Time t, std::function<void()> fn) {
    if (t < now_) {
      t = now_;
    }
    EventId id = next_id_++;
    queue_.emplace(Key{t, id}, std::move(fn));
    return id;
  }

  bool Cancel(EventId id);
  std::uint64_t Run(std::uint64_t max_events = UINT64_MAX);

  bool Empty() const { return queue_.empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Key {
    msim::Time time;
    EventId id;
    bool operator<(const Key& o) const {
      return time != o.time ? time < o.time : id < o.id;
    }
  };

  bool PopAndFire();

  msim::Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
  std::map<Key, std::function<void()>> queue_;
};

}  // namespace mbench

#endif  // BENCH_MAP_QUEUE_REF_H_
