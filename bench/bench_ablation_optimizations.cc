// E13 — ablation of the protocol's optional mechanisms:
//  * optimization 1 (§6.1): reader-to-writer upgrade without a page transfer;
//  * optimization 2 (§6.1): downgraded writer retains a read copy;
//  * §7.1 caveat 1: honor an invalidation when less than a retry round trip
//    (12.9 ms) remains in the window (absent from the paper's implementation);
//  * the "queued invalidation" the paper names but never implemented.
//
// The worst-case ping-pong exercises the read-then-write pattern that the
// two optimizations were designed for (§6.1's "two advisory messages are
// sent rather than ... transmitting the complete page"); the conflicting
// read-writers show the window-mechanics options.
#include <cstdio>
#include <iostream>
#include <string>

#include "src/trace/table.h"
#include "src/workload/pingpong.h"
#include "src/workload/readwriters.h"

namespace {

struct Out {
  double pingpong_cps = 0;
  double pp_large_per_cycle = 0;
  double pp_msgs_per_cycle = 0;
  double rw_ops_per_sec = 0;
  std::uint64_t refusals = 0;
};

void AddRow(mtrace::TextTable& t, const std::string& name, const Out& o) {
  t.AddRow({name, mtrace::TextTable::Num(o.pingpong_cps, 2),
            mtrace::TextTable::Num(o.pp_msgs_per_cycle, 1),
            mtrace::TextTable::Num(o.pp_large_per_cycle, 1),
            mtrace::TextTable::Num(o.rw_ops_per_sec, 0),
            mtrace::TextTable::Int(static_cast<long long>(o.refusals))});
}

}  // namespace

int main() {
  std::printf("E13 — protocol mechanism ablation\n");
  std::printf("(ping-pong at Delta=1 tick; read-writers at Delta=100 ms)\n\n");
  const msim::Duration kPpDelta = mos::SchedulerConfig{}.tick_us;
  const msim::Duration kRwDelta = 100 * msim::kMillisecond;

  mtrace::TextTable t({"configuration", "pingpong cycles/s", "msgs/cycle",
                       "page transfers/cycle", "read-writers ops/s", "rw refusals"});

  auto config = [&](bool upgrade, bool downgrade, bool honor, bool queued) {
    mirage::ProtocolOptions p;
    p.default_window_us = kPpDelta;
    p.upgrade_optimization = upgrade;
    p.downgrade_optimization = downgrade;
    p.honor_small_remaining = honor;
    p.queued_invalidation = queued;
    return p;
  };
  auto with_rw_delta = [&](mirage::ProtocolOptions p) {
    p.default_window_us = kRwDelta;
    return p;
  };

  // Note: the two workloads run under their own Delta; Run() uses the
  // options as given for ping-pong and the caller passes the rw variant.
  struct Case {
    const char* name;
    bool upgrade, downgrade, honor, queued;
  };
  const Case cases[] = {
      {"full Mirage (paper config)", true, true, false, false},
      {"without opt 1 (no upgrade)", false, true, false, false},
      {"without opt 2 (no downgrade)", true, false, false, false},
      {"without both optimizations", false, false, false, false},
      {"+ honor-small-remaining (§7.1)", true, true, true, false},
      {"+ queued invalidation", true, true, false, true},
  };
  for (const Case& c : cases) {
    mirage::ProtocolOptions pp = config(c.upgrade, c.downgrade, c.honor, c.queued);
    Out o;
    {
      msysv::WorldOptions opts;
      opts.protocol = pp;
      msysv::World world(2, opts);
      mwork::PingPongParams prm;
      prm.rounds = 30;
      auto r = mwork::LaunchPingPong(world, prm);
      world.RunUntil([&] { return r->completed(); }, 600 * msim::kSecond);
      o.pingpong_cps = r->CyclesPerSecond();
      o.pp_large_per_cycle =
          static_cast<double>(world.network().stats().large_packets) / prm.rounds;
      o.pp_msgs_per_cycle =
          static_cast<double>(world.network().stats().packets) / prm.rounds;
    }
    {
      msysv::WorldOptions opts;
      opts.protocol = with_rw_delta(pp);
      msysv::World world(2, opts);
      mwork::ReadWritersParams prm;
      prm.iterations = 50000;
      auto r = mwork::LaunchReadWriters(world, prm);
      world.RunUntil([&] { return r->completed(); }, 600 * msim::kSecond);
      o.rw_ops_per_sec = r->OpsPerSecond();
      for (int s = 0; s < 2; ++s) {
        o.refusals += world.engine(s)->stats().wait_replies_sent +
                      world.engine(s)->stats().invalidation_retries +
                      world.engine(s)->stats().queued_invalidations;
      }
    }
    AddRow(t, c.name, o);
  }
  t.Print(std::cout);
  std::printf(
      "\nexpected shape: disabling the optimizations adds page transfers per ping-pong\n"
      "cycle (upgrades and downgrade retentions become full copies); queued\n"
      "invalidation removes the refusal/retry pair; honor-small-remaining trims the\n"
      "window tail. The decrement loops fault on writes only, so the read-path\n"
      "optimizations leave read-writers unchanged — as the paper's design predicts.\n");
  return 0;
}
