// Simulator hot-path microbenchmark suite (DESIGN.md §10).
//
// Measures the event-queue primitives that dominate every experiment sweep —
// schedule/fire throughput, schedule/cancel throughput, packet round-trips,
// and a fig8-flavoured end-to-end run — and emits a machine-readable
// BENCH_sim.json for the CI trajectory.
//
// Every queue benchmark is measured twice: once against the live Simulator
// (binary heap + slot pool + InlineFunction) and once against an in-binary
// replica of the pre-change queue (std::map keyed (time, id) holding
// std::function, linear-scan Cancel). The recorded `speedup` is the ratio of
// the two on the same host, which makes the number portable: a slow CI
// runner slows both sides equally, so the checked-in baseline gates on
// speedup, not raw events/s. End-to-end wall-clock numbers are reported for
// the trajectory but not gated (they track host speed).
//
// Usage:
//   bench_sim_micro                  human-readable table
//   bench_sim_micro --json[=FILE]    also write JSON (default BENCH_sim.json)
//   bench_sim_micro --baseline=FILE  fail (exit 1) if any gated speedup
//                                    regresses more than --tolerance
//                                    (default 0.25) below the baseline
//   bench_sim_micro --quick          ~5x shorter measurement (smoke runs)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/map_queue_ref.h"
#include "src/exp/json.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/sysv/world.h"
#include "src/workload/readwriters.h"

namespace {

using mbench::MapQueueRef;

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Measurement: grow rounds geometrically until one run of `body(rounds)`
// consumes at least `min_secs`, then time three runs at that size and keep
// the fastest. Best-of-N is the standard noise-robust throughput estimator:
// interference (daemons, frequency dips) only ever slows a run down, so the
// minimum time is the closest observation of the code's true cost.
template <typename Body>
double MeasureOpsPerSec(Body body, std::uint64_t ops_per_round, double min_secs) {
  std::uint64_t rounds = 64;
  double secs = 0.0;
  for (;;) {
    auto t0 = WallClock::now();
    body(rounds);
    secs = SecondsSince(t0);
    if (secs >= min_secs) {
      break;
    }
    rounds = secs <= 0.0 ? rounds * 8 : rounds * 2;
  }
  for (int rep = 0; rep < 2; ++rep) {
    auto t0 = WallClock::now();
    body(rounds);
    secs = std::min(secs, SecondsSince(t0));
  }
  return static_cast<double>(ops_per_round) * static_cast<double>(rounds) / secs;
}

struct BenchResult {
  std::string name;
  double events_per_sec = 0.0;      // live Simulator
  double ref_events_per_sec = 0.0;  // MapQueueRef; 0 when not applicable
  double speedup = 0.0;             // events_per_sec / ref_events_per_sec
  bool gated = false;               // participates in the baseline check
  double wall_seconds = 0.0;        // end-to-end benches only
  std::uint64_t sim_events = 0;     // end-to-end benches only
};

// ---- schedule+fire: `batch` events per round, mixed short future delays
// (or all at the current instant), drained by Run(). This is the shape of a
// sweep's steady state: per-site ticks, scheduler slices, a few timers.
//
// The closure carries a 32-byte capture to match the real event population:
// the simulator's hot-path lambdas hold a packet (two site ids, type, size,
// payload pointer) or a coroutine handle plus context, not a bare pointer.
// That size is past std::function's small-buffer limit, so the reference
// queue pays the closure allocation the old simulator actually paid.
BenchResult BenchScheduleFire(int batch, bool zero_delay, double min_secs) {
  std::int64_t sink = 0;
  std::uint64_t p0 = 0x9E3779B97F4A7C15ull, p1 = 0xBF58476D1CE4E5B9ull, p2 = 0x94D049BB133111EBull;
  double live = MeasureOpsPerSec(
      [&](std::uint64_t rounds) {
        msim::Simulator sim;
        for (std::uint64_t r = 0; r < rounds; ++r) {
          for (int i = 0; i < batch; ++i) {
            sim.Schedule(zero_delay ? 0 : (i & 7) + 1,
                         [&sink, p0, p1, p2] { sink += static_cast<std::int64_t>(p0 ^ p1 ^ p2); });
          }
          sim.Run();
        }
      },
      batch, min_secs);
  double ref = MeasureOpsPerSec(
      [&](std::uint64_t rounds) {
        MapQueueRef q;
        for (std::uint64_t r = 0; r < rounds; ++r) {
          for (int i = 0; i < batch; ++i) {
            q.Schedule(zero_delay ? 0 : (i & 7) + 1,
                       [&sink, p0, p1, p2] { sink += static_cast<std::int64_t>(p0 ^ p1 ^ p2); });
          }
          q.Run();
        }
      },
      batch, min_secs);
  BenchResult out;
  out.name = std::string("schedule_fire_") + (zero_delay ? "zero_" : "future_") +
             std::to_string(batch);
  out.events_per_sec = live;
  out.ref_events_per_sec = ref;
  out.speedup = live / ref;
  out.gated = true;
  return out;
}

// ---- schedule+cancel: every scheduled event is cancelled before it fires
// (the timer-race shape: request timeouts armed and disarmed per message).
BenchResult BenchScheduleCancel(int batch, double min_secs) {
  std::int64_t sink = 0;
  std::uint64_t p0 = 0x9E3779B97F4A7C15ull, p1 = 0xBF58476D1CE4E5B9ull, p2 = 0x94D049BB133111EBull;
  double live = MeasureOpsPerSec(
      [&](std::uint64_t rounds) {
        msim::Simulator sim;
        std::vector<msim::EventId> ids(batch);
        for (std::uint64_t r = 0; r < rounds; ++r) {
          for (int i = 0; i < batch; ++i) {
            ids[i] = sim.Schedule(1000 + i, [&sink, p0, p1, p2] {
              sink += static_cast<std::int64_t>(p0 ^ p1 ^ p2);
            });
          }
          for (int i = 0; i < batch; ++i) {
            sim.Cancel(ids[i]);
          }
        }
      },
      batch, min_secs);
  double ref = MeasureOpsPerSec(
      [&](std::uint64_t rounds) {
        MapQueueRef q;
        std::vector<MapQueueRef::EventId> ids(batch);
        for (std::uint64_t r = 0; r < rounds; ++r) {
          for (int i = 0; i < batch; ++i) {
            ids[i] = q.Schedule(1000 + i, [&sink, p0, p1, p2] {
              sink += static_cast<std::int64_t>(p0 ^ p1 ^ p2);
            });
          }
          for (int i = 0; i < batch; ++i) {
            q.Cancel(ids[i]);
          }
        }
      },
      batch, min_secs);
  BenchResult out;
  out.name = "schedule_cancel_" + std::to_string(batch);
  out.events_per_sec = live;
  out.ref_events_per_sec = ref;
  out.speedup = live / ref;
  out.gated = true;
  return out;
}

// ---- packet round-trip: two sites ping-pong a short packet through the
// Network (no circuit layer; the protocol's lossless fast path). Measures
// the delivery dispatch chain: Deliver -> Release -> sink -> Schedule.
BenchResult BenchPacketRoundTrip(double min_secs) {
  BenchResult out;
  out.name = "packet_roundtrip";
  double rt = MeasureOpsPerSec(
      [&](std::uint64_t rounds) {
        msim::Simulator sim;
        mnet::CostModel costs;
        mnet::Network net(&sim, &costs);
        std::uint64_t remaining = 0;
        mnet::Packet ping;
        ping.src = 0;
        ping.dst = 1;
        ping.type = 1;
        ping.size_bytes = 64;
        net.RegisterSite(0, [&](const mnet::Packet&) {
          if (remaining > 0) {
            --remaining;
            sim.Schedule(1, [&] { net.Deliver(ping); });
          }
        });
        net.RegisterSite(1, [&](const mnet::Packet& p) {
          mnet::Packet pong = p;
          pong.src = 1;
          pong.dst = 0;
          sim.Schedule(1, [&net, pong] { net.Deliver(pong); });
        });
        remaining = rounds;
        net.Deliver(ping);
        sim.Run();
      },
      1, min_secs);
  out.events_per_sec = rt;  // round trips per second
  return out;
}

// ---- fig8-preset end-to-end: the 2-site conflicting read-writers workload
// behind EXPERIMENTS.md figure 8, window 0 (maximum cross-site transfer
// traffic), run to completion. Wall clock and simulator events/s are the
// trajectory numbers; not gated (they scale with host speed).
BenchResult BenchFig8EndToEnd(int iterations) {
  BenchResult out;
  out.name = "fig8_e2e";
  msysv::WorldOptions opts;
  opts.protocol.default_window_us = 0;
  msysv::World world(2, opts);
  mwork::ReadWritersParams prm;
  prm.iterations = iterations;
  auto t0 = WallClock::now();
  auto r = mwork::LaunchReadWriters(world, prm);
  world.RunUntil([&] { return r->completed(); }, 600 * msim::kSecond);
  out.wall_seconds = SecondsSince(t0);
  out.sim_events = world.sim().ProcessedEvents();
  out.events_per_sec = static_cast<double>(out.sim_events) / out.wall_seconds;
  return out;
}

// ---------------------------------------------------------------------------

mexp::Json ToJson(const std::vector<BenchResult>& results) {
  mexp::Json root = mexp::Json::Object();
  root.Set("schema", "mirage-bench-sim-v1");
  mexp::Json arr = mexp::Json::Array();
  for (const BenchResult& r : results) {
    mexp::Json b = mexp::Json::Object();
    b.Set("name", r.name);
    b.Set("events_per_sec", r.events_per_sec);
    if (r.ref_events_per_sec > 0.0) {
      b.Set("ref_events_per_sec", r.ref_events_per_sec);
      b.Set("speedup", r.speedup);
    }
    b.Set("gated", r.gated);
    if (r.wall_seconds > 0.0) {
      b.Set("wall_seconds", r.wall_seconds);
      b.Set("sim_events", r.sim_events);
    }
    arr.Push(std::move(b));
  }
  root.Set("benchmarks", std::move(arr));
  return root;
}

// Compares gated speedups against a checked-in baseline; returns the number
// of regressions beyond `tolerance` (fractional, e.g. 0.25 = 25%).
int CheckBaseline(const std::vector<BenchResult>& results, const std::string& path,
                  double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_sim_micro: cannot open baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  mexp::Json base = mexp::Json::Parse(ss.str(), &err);
  if (!err.empty()) {
    std::fprintf(stderr, "bench_sim_micro: baseline parse error: %s\n", err.c_str());
    return 1;
  }
  const mexp::Json* benches = base.Find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    std::fprintf(stderr, "bench_sim_micro: baseline has no benchmarks array\n");
    return 1;
  }
  int regressions = 0;
  for (const BenchResult& r : results) {
    if (!r.gated) {
      continue;
    }
    for (const mexp::Json& b : benches->items()) {
      if (b.GetString("name", "") != r.name) {
        continue;
      }
      double want = b.GetDouble("speedup", 0.0);
      double floor = want * (1.0 - tolerance);
      if (r.speedup < floor) {
        std::fprintf(stderr,
                     "REGRESSION %s: speedup %.2fx < %.2fx (baseline %.2fx - %.0f%%)\n",
                     r.name.c_str(), r.speedup, floor, want, tolerance * 100);
        ++regressions;
      }
      break;
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  double tolerance = 0.25;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_sim.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(arg.substr(12));
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (see the header comment)\n", arg.c_str());
      return 2;
    }
  }

  const double min_secs = quick ? 0.05 : 0.25;
  std::vector<BenchResult> results;
  results.push_back(BenchScheduleFire(64, /*zero_delay=*/false, min_secs));
  results.push_back(BenchScheduleFire(256, /*zero_delay=*/false, min_secs));
  results.push_back(BenchScheduleFire(1024, /*zero_delay=*/false, min_secs));
  results.push_back(BenchScheduleFire(64, /*zero_delay=*/true, min_secs));
  results.push_back(BenchScheduleCancel(1024, min_secs));
  results.push_back(BenchPacketRoundTrip(min_secs));
  results.push_back(BenchFig8EndToEnd(quick ? 10000 : 50000));

  std::printf("%-26s %14s %14s %9s\n", "benchmark", "events/s", "ref events/s", "speedup");
  for (const BenchResult& r : results) {
    if (r.ref_events_per_sec > 0.0) {
      std::printf("%-26s %14.0f %14.0f %8.2fx\n", r.name.c_str(), r.events_per_sec,
                  r.ref_events_per_sec, r.speedup);
    } else if (r.wall_seconds > 0.0) {
      std::printf("%-26s %14.0f %14s %8s  (%.3fs wall, %llu events)\n", r.name.c_str(),
                  r.events_per_sec, "-", "-", r.wall_seconds,
                  static_cast<unsigned long long>(r.sim_events));
    } else {
      std::printf("%-26s %14.0f %14s %8s\n", r.name.c_str(), r.events_per_sec, "-", "-");
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    ToJson(results).Dump(out);
    out << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    int regressions = CheckBaseline(results, baseline_path, tolerance);
    if (regressions > 0) {
      std::fprintf(stderr, "bench_sim_micro: %d regression(s) beyond %.0f%% tolerance\n",
                   regressions, tolerance * 100);
      return 1;
    }
    std::printf("baseline check passed (tolerance %.0f%%)\n", tolerance * 100);
  }
  return 0;
}
