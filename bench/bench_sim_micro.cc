// Host-time microbenchmarks of the simulation substrate itself (google-
// benchmark): event queue throughput, coroutine task switching, and
// end-to-end simulated-protocol throughput per host second. These gate the
// practicality of the larger sweeps (Figures 7 and 8 run thousands of
// simulated seconds).
#include <benchmark/benchmark.h>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sysv/world.h"
#include "src/workload/readwriters.h"

namespace {

void BM_EventSchedule(benchmark::State& state) {
  msim::Simulator sim;
  std::int64_t n = 0;
  for (auto _ : state) {
    sim.Schedule(1, [&n] { ++n; });
    sim.Run();
  }
  benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventSchedule);

void BM_EventBurst1k(benchmark::State& state) {
  for (auto _ : state) {
    msim::Simulator sim;
    std::int64_t n = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&n] { ++n; });
    }
    sim.Run();
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_EventBurst1k);

msim::Task<> Chained(msim::Simulator& sim, int depth) {
  if (depth > 0) {
    co_await Chained(sim, depth - 1);
  }
  co_await msim::SleepFor(sim, 1);
}

void BM_CoroutineChain(benchmark::State& state) {
  for (auto _ : state) {
    msim::Simulator sim;
    msim::Task<> t = Chained(sim, 32);
    t.Start();
    sim.Run();
  }
}
BENCHMARK(BM_CoroutineChain);

void BM_SimulatedReadWriters(benchmark::State& state) {
  // Simulated protocol seconds processed per host second.
  double simulated_us = 0;
  for (auto _ : state) {
    msysv::WorldOptions opts;
    opts.protocol.default_window_us = 100 * msim::kMillisecond;
    msysv::World world(2, opts);
    mwork::ReadWritersParams prm;
    prm.iterations = 5000;
    auto r = mwork::LaunchReadWriters(world, prm);
    world.RunUntil([&] { return r->completed; }, 60 * msim::kSecond);
    simulated_us += static_cast<double>(world.sim().Now());
  }
  state.counters["sim_seconds_per_host_second"] =
      benchmark::Counter(simulated_us / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedReadWriters)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
