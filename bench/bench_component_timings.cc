// E1/E2/E3 — §7.1 component costs, Table 3, and the §6.2 remap cost.
//
//  * E1: short-message and 1 KB-message round trips (paper: 12.9 / 21.5 ms);
//  * E2: time to obtain a checked-in page from a remote site, with the
//    component breakdown of Table 3 (paper total: 27.5 ms elapsed);
//  * E3: the lazy-remap cost charged at schedule-in as a function of the
//    attached segment size (paper: 106-125 us per 512-byte page, segments
//    up to 128 KB).
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/mem/backend.h"
#include "src/sysv/world.h"
#include "src/trace/table.h"

namespace {

// A minimal protocol backend that echoes packets, used to measure raw
// message round trips through the full kernel/scheduler/network path.
class EchoBackend : public mmem::DsmBackend {
 public:
  explicit EchoBackend(mos::Kernel* kernel) : kernel_(kernel) {}

  void Start() override {
    kernel_->SetPacketHandler([this](mos::Process* self, mnet::Packet pkt) {
      return HandlePacket(self, std::move(pkt));
    });
  }
  mmem::SegmentImage* EnsureImage(const mmem::SegmentMeta&) override { return nullptr; }
  void DropSegment(mmem::SegmentId) override {}
  msim::Task<mmem::FaultStatus> Fault(mos::Process*, mmem::SegmentId, mmem::PageNum,
                                      bool) override {
    co_return mmem::FaultStatus::kOk;
  }

  mos::Channel reply_chan;
  bool got_reply = false;

 private:
  msim::Task<> HandlePacket(mos::Process* self, mnet::Packet pkt) {
    if (pkt.type == 1) {  // ping: echo a short reply
      mnet::Packet pong;
      pong.src = kernel_->site();
      pong.dst = pkt.src;
      pong.type = 2;
      pong.size_bytes = 64;
      co_await kernel_->Send(self, pong);
    } else {  // pong: wake the measuring process
      got_reply = true;
      kernel_->Wakeup(reply_chan);
    }
  }

  mos::Kernel* kernel_;
};

struct EchoWorld {
  std::unique_ptr<msysv::World> world;
  EchoBackend* b0 = nullptr;
  EchoBackend* b1 = nullptr;
};

EchoWorld MakeEchoWorld() {
  EchoWorld ew;
  msysv::WorldOptions opts;
  std::vector<EchoBackend*> backends;
  opts.backend_factory = [&backends](mos::Kernel* k, mirage::SegmentRegistry*,
                                     mtrace::Tracer*) -> std::unique_ptr<mmem::DsmBackend> {
    auto b = std::make_unique<EchoBackend>(k);
    backends.push_back(b.get());
    return b;
  };
  ew.world = std::make_unique<msysv::World>(2, opts);
  ew.b0 = backends[0];
  ew.b1 = backends[1];
  return ew;
}

msim::Duration MeasureEchoRtt(std::uint32_t ping_bytes) {
  EchoWorld ew = MakeEchoWorld();
  msim::Duration rtt = 0;
  bool done = false;
  ew.world->kernel(0).Spawn("pinger", mos::Priority::kUser,
                            [&](mos::Process* p) -> msim::Task<> {
                              mnet::Packet ping;
                              ping.src = 0;
                              ping.dst = 1;
                              ping.type = 1;
                              ping.size_bytes = ping_bytes;
                              msim::Time t0 = ew.world->sim().Now();
                              co_await ew.world->kernel(0).Send(p, ping);
                              while (!ew.b0->got_reply) {
                                co_await ew.world->kernel(0).SleepOn(p, ew.b0->reply_chan);
                              }
                              rtt = ew.world->sim().Now() - t0;
                              done = true;
                            });
  ew.world->RunUntil([&] { return done; }, msim::kSecond);
  return rtt;
}

// E2: remote fetch of a checked-in page, fault to process-resume.
msim::Duration MeasureRemoteFetch() {
  msysv::World world(2);
  int id = world.shm(0).Shmget(1, 512, true).value();
  bool setup = false;
  bool done = false;
  msim::Duration latency = 0;
  world.kernel(0).Spawn("owner", mos::Priority::kUser, [&](mos::Process* p) -> msim::Task<> {
    auto& shm = world.shm(0);
    mmem::VAddr base = shm.Shmat(p, id).value();
    co_await shm.WriteWord(p, base, 42);
    setup = true;
    // Hold the attach so the segment survives; idle afterwards.
    co_await world.kernel(0).SleepFor(p, 10 * msim::kSecond);
  });
  world.RunUntil([&] { return setup; }, msim::kSecond);
  world.kernel(1).Spawn("fetcher", mos::Priority::kUser, [&](mos::Process* p) -> msim::Task<> {
    auto& shm = world.shm(1);
    mmem::VAddr base = shm.Shmat(p, id).value();
    msim::Time t0 = world.sim().Now();
    std::uint32_t v = co_await shm.ReadWord(p, base);
    latency = world.sim().Now() - t0;
    done = v == 42;
  });
  world.RunUntil([&] { return done; }, msim::kSecond);
  return latency;
}

// E3: measured remap charge per schedule-in vs attached segment size.
msim::Duration MeasureRemapCharge(int pages) {
  msysv::World world(1);
  int id = world.shm(0).Shmget(1, pages * mmem::kPageSize, true).value();
  bool done = false;
  msim::Duration cost = 0;
  // Two processes alternate via yield so every schedule-in pays the remap.
  world.kernel(0).Spawn("other", mos::Priority::kUser, [&](mos::Process* p) -> msim::Task<> {
    for (int i = 0; i < 100 && !done; ++i) {
      co_await world.kernel(0).Compute(p, 100);
      co_await world.kernel(0).Yield(p);
    }
  });
  world.kernel(0).Spawn("attacher", mos::Priority::kUser, [&](mos::Process* p) -> msim::Task<> {
    auto& shm = world.shm(0);
    mmem::VAddr base = shm.Shmat(p, id).value();
    co_await shm.WriteWord(p, base, 1);
    msim::Duration before = world.kernel(0).stats().remap_time;
    std::uint64_t dispatches_before = p->dispatches;
    for (int i = 0; i < 20; ++i) {
      co_await world.kernel(0).Compute(p, 100);
      co_await world.kernel(0).Yield(p);
    }
    msim::Duration charged = world.kernel(0).stats().remap_time - before;
    std::uint64_t n = p->dispatches - dispatches_before;
    cost = n > 0 ? charged / static_cast<msim::Duration>(n) : 0;
    done = true;
  });
  world.RunUntil([&] { return done; }, 10 * msim::kSecond);
  return cost;
}

}  // namespace

int main() {
  mnet::CostModel costs;

  std::printf("E1 — §7.1 message round trips\n\n");
  mtrace::TextTable rtt({"measurement", "model components (ms)", "measured end-to-end (ms)",
                         "paper (ms)"});
  double short_components = msim::ToMilliseconds(2 * costs.tx_short_us + 2 * costs.rx_short_us);
  double large_components = msim::ToMilliseconds(costs.tx_large_us + costs.rx_large_us +
                                                 costs.tx_short_us + costs.rx_short_us);
  msim::Duration short_rtt = MeasureEchoRtt(64);
  msim::Duration large_rtt = MeasureEchoRtt(1024);
  rtt.AddRow({"short message round trip", mtrace::TextTable::Num(short_components, 1),
              mtrace::TextTable::Num(msim::ToMilliseconds(short_rtt), 1), "12.9"});
  rtt.AddRow({"1 KB message + short reply", mtrace::TextTable::Num(large_components, 1),
              mtrace::TextTable::Num(msim::ToMilliseconds(large_rtt), 1), "21.5"});
  rtt.Print(std::cout);
  std::printf("(end-to-end additionally includes the per-input server handling the paper\n"
              " accounts separately: 1.5 ms per message, plus scheduling)\n\n");

  std::printf("E2 — Table 3: time to obtain an in-memory page remotely\n\n");
  mtrace::TextTable t3({"operation", "time (ms)", "paper (ms)"});
  t3.AddRow({"using-site read request (fault CPU)",
             mtrace::TextTable::Num(msim::ToMilliseconds(costs.fault_request_cpu_us), 1),
             "2.5"});
  t3.AddRow({"read request output transmission",
             mtrace::TextTable::Num(msim::ToMilliseconds(costs.tx_short_us), 1), "3.2"});
  t3.AddRow({"read request input reception",
             mtrace::TextTable::Num(msim::ToMilliseconds(costs.rx_short_us), 1), "3.2"});
  t3.AddRow({"server process time for request",
             mtrace::TextTable::Num(msim::ToMilliseconds(costs.input_handle_cpu_us), 1),
             "1.5"});
  t3.AddRow({"library processing time",
             mtrace::TextTable::Num(msim::ToMilliseconds(costs.library_processing_cpu_us), 1),
             "2.0"});
  t3.AddRow({"page output transmission",
             mtrace::TextTable::Num(msim::ToMilliseconds(costs.tx_large_us), 1), "7.5"});
  t3.AddRow({"page input reception",
             mtrace::TextTable::Num(msim::ToMilliseconds(costs.rx_large_us), 1), "7.5"});
  double component_sum = msim::ToMilliseconds(
      costs.fault_request_cpu_us + costs.tx_short_us + costs.rx_short_us +
      costs.input_handle_cpu_us + costs.library_processing_cpu_us + costs.tx_large_us +
      costs.rx_large_us);
  t3.AddRow({"COMPONENT TOTAL", mtrace::TextTable::Num(component_sum, 1), "27.5"});
  msim::Duration fetch = MeasureRemoteFetch();
  t3.AddRow({"measured fault-to-resume (live system)",
             mtrace::TextTable::Num(msim::ToMilliseconds(fetch), 1), "-"});
  t3.Print(std::cout);
  std::printf("(fault-to-resume additionally includes install handling and rescheduling\n"
              " of the faulting process, which Table 3's elapsed total excluded)\n\n");

  std::printf("E3 — §6.2 lazy remap charge per schedule-in vs segment size\n\n");
  mtrace::TextTable remap({"segment", "pages", "remap charge (us)", "per page (us)"});
  for (int pages : {1, 4, 16, 64, 128, 256}) {
    msim::Duration c = MeasureRemapCharge(pages);
    remap.AddRow({std::to_string(pages * mmem::kPageSize / 1024) + " KB",
                  mtrace::TextTable::Int(pages),
                  mtrace::TextTable::Int(c),
                  mtrace::TextTable::Num(static_cast<double>(c) / pages, 1)});
  }
  remap.Print(std::cout);
  std::printf("(paper: 106-125 us per 512-byte page; largest segment 128 KB)\n");
  return 0;
}
