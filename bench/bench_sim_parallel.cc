// Conservative parallel-execution benchmark (DESIGN.md §12).
//
// Measures the wall-clock speedup of `Simulator::SetWorkers(n)` over the
// serial dispatcher on two fixed worlds, at n in {1, 2, 4}:
//
//  - parallel_fig8_w{2,4}: the 2-site conflicting read-writers world
//    (the paper's Figure 8 shape). Two sites sharing one hot page is the
//    parallel mode's worst case — every window is dominated by cross-site
//    traffic — so the recorded ratio tracks the overhead floor: windowed
//    fork-join must never make the smallest world pathologically slower.
//  - parallel_multiseg_w{2,4}: a scalematrix-style world — 32 sites, 16
//    independent read-writers pairs, each pair on its own segment. Pairs
//    never share pages, so partitions only synchronize at window barriers;
//    this is the shape the parallel core exists for, and its 4-worker
//    speedup is the gated headline number (target on a >= 4-core host:
//    >= 1.5x).
//  - parallel_multiseg_local_w{2,4}: the same 32-site world with both
//    processes of each pair colocated on one site, so no page ever leaves
//    its home — the embarrassingly-parallel upper bound for the windowed
//    core (every event executes inside a multi-partition window).
//
// Speedup gates are hardware-aware: a w-worker ratio is only compared
// against the baseline when std::thread::hardware_concurrency() >= w.
// On a host with fewer cores than workers the OS time-slices the worker
// threads on one core, so wall-clock speedup is physically capped at
// 1.0x regardless of simulator quality; those rows are recorded (they
// still track the overhead floor) but not gated, and the JSON carries
// "host_cores" so a reader can interpret the ratios.
//
// Speedups are serial-wall / parallel-wall of the identical deterministic
// run, so the ratio is independent of absolute host speed (the same
// reasoning as bench_sim_micro's queue-replica ratios). Every measured run
// is also fingerprint-checked against the serial one (final virtual time
// and processed-event count) — a benchmark that got a different simulation
// would be measuring a bug.
//
// Usage:
//   bench_sim_parallel                  human-readable table
//   bench_sim_parallel --json[=FILE]    also write JSON (default
//                                       BENCH_sim_parallel.json,
//                                       mirage-bench-sim-v1 schema)
//   bench_sim_parallel --baseline=FILE  fail (exit 1) if any gated speedup
//                                       regresses more than --tolerance
//                                       (default 0.25) below the baseline
//   bench_sim_parallel --quick          single measurement rep (smoke runs)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/exp/json.h"
#include "src/sim/time.h"
#include "src/sysv/world.h"
#include "src/workload/readwriters.h"

namespace {

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

// One completed world run: the wall-clock cost plus the determinism
// fingerprint that must match the serial run bit-for-bit.
struct RunSample {
  double wall_seconds = 0.0;
  msim::Time sim_now = 0;
  std::uint64_t sim_events = 0;
};

struct Scenario {
  std::string name;
  int sites = 2;
  int pairs = 1;
  int iterations = 0;
  bool colocate = false;  // both processes of a pair on one site
};

RunSample RunScenario(const Scenario& sc, int workers) {
  msysv::WorldOptions opts;
  opts.parallel_ok = true;
  opts.sim_workers = workers;
  msysv::World world(sc.sites, opts);
  std::vector<std::shared_ptr<mwork::ReadWritersResult>> results;
  auto t0 = WallClock::now();
  for (int p = 0; p < sc.pairs; ++p) {
    mwork::ReadWritersParams prm;
    if (sc.colocate) {
      prm.site_a = p % sc.sites;
      prm.site_b = prm.site_a;
    } else {
      prm.site_a = 2 * p;
      prm.site_b = 2 * p + 1;
    }
    prm.key = 500 + static_cast<std::uint64_t>(p);
    prm.iterations = sc.iterations;
    results.push_back(mwork::LaunchReadWriters(world, prm));
  }
  world.RunUntil(
      [&] {
        for (const auto& r : results) {
          if (!r->completed()) {
            return false;
          }
        }
        return true;
      },
      600 * msim::kSecond);
  RunSample s;
  s.wall_seconds = SecondsSince(t0);
  s.sim_now = world.sim().Now();
  s.sim_events = world.sim().ProcessedEvents();
  for (const auto& r : results) {
    if (!r->completed()) {
      std::fprintf(stderr, "bench_sim_parallel: %s did not complete at workers=%d\n",
                   sc.name.c_str(), workers);
      std::exit(1);
    }
  }
  return s;
}

// Best-of-N wall clock (interference only slows runs down), with the
// fingerprint checked on every rep.
RunSample Measure(const Scenario& sc, int workers, int reps) {
  RunSample best = RunScenario(sc, workers);
  for (int i = 1; i < reps; ++i) {
    RunSample s = RunScenario(sc, workers);
    if (s.sim_now != best.sim_now || s.sim_events != best.sim_events) {
      std::fprintf(stderr, "bench_sim_parallel: %s nondeterministic at workers=%d\n",
                   sc.name.c_str(), workers);
      std::exit(1);
    }
    best.wall_seconds = std::min(best.wall_seconds, s.wall_seconds);
  }
  return best;
}

struct BenchResult {
  std::string name;
  double events_per_sec = 0.0;      // parallel run
  double ref_events_per_sec = 0.0;  // serial run of the same world
  double speedup = 0.0;             // serial wall / parallel wall
  bool gated = false;
  double wall_seconds = 0.0;
  std::uint64_t sim_events = 0;
};

mexp::Json ToJson(const std::vector<BenchResult>& results) {
  mexp::Json root = mexp::Json::Object();
  root.Set("schema", "mirage-bench-sim-v1");
  root.Set("host_cores",
           static_cast<double>(std::thread::hardware_concurrency()));
  mexp::Json arr = mexp::Json::Array();
  for (const BenchResult& r : results) {
    mexp::Json j = mexp::Json::Object();
    j.Set("name", r.name);
    j.Set("events_per_sec", r.events_per_sec);
    j.Set("ref_events_per_sec", r.ref_events_per_sec);
    j.Set("speedup", r.speedup);
    j.Set("gated", r.gated);
    j.Set("wall_seconds", r.wall_seconds);
    j.Set("sim_events", static_cast<double>(r.sim_events));
    arr.Push(std::move(j));
  }
  root.Set("benchmarks", std::move(arr));
  return root;
}

int CheckBaseline(const std::vector<BenchResult>& results, const std::string& path,
                  double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_sim_parallel: cannot open baseline %s\n", path.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::string err;
  mexp::Json base = mexp::Json::Parse(text, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "bench_sim_parallel: baseline parse error: %s\n", err.c_str());
    return 1;
  }
  const mexp::Json* arr = base.Find("benchmarks");
  if (arr == nullptr) {
    std::fprintf(stderr, "bench_sim_parallel: baseline has no benchmarks array\n");
    return 1;
  }
  int regressions = 0;
  for (const BenchResult& r : results) {
    if (!r.gated) {
      continue;
    }
    for (const mexp::Json& item : arr->items()) {
      if (item.GetString("name", "") != r.name) {
        continue;
      }
      double want = item.GetDouble("speedup", 0.0);
      double floor = want * (1.0 - tolerance);
      if (r.speedup < floor) {
        std::fprintf(stderr,
                     "REGRESSION %s: speedup %.2fx < %.2fx (baseline %.2fx - %.0f%%)\n",
                     r.name.c_str(), r.speedup, floor, want, tolerance * 100);
        ++regressions;
      }
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_path = "BENCH_sim_parallel.json";
  std::string baseline_path;
  double tolerance = 0.25;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(arg.substr(12));
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "bench_sim_parallel: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  const int reps = quick ? 1 : 3;
  const Scenario scenarios[] = {
      {"fig8", 2, 1, quick ? 20000 : 60000, false},
      {"multiseg", 32, 16, quick ? 8000 : 20000, false},
      {"multiseg_local", 32, 32, quick ? 8000 : 20000, true},
  };

  std::vector<BenchResult> results;
  std::printf("%-22s %12s %12s %9s\n", "benchmark", "wall (ms)", "events/s", "speedup");
  for (const Scenario& sc : scenarios) {
    const RunSample serial = Measure(sc, 1, reps);
    for (int w : {2, 4}) {
      const RunSample par = Measure(sc, w, reps);
      if (par.sim_now != serial.sim_now || par.sim_events != serial.sim_events) {
        std::fprintf(stderr,
                     "bench_sim_parallel: %s diverged from serial at workers=%d "
                     "(now %lld vs %lld, events %llu vs %llu)\n",
                     sc.name.c_str(), w, static_cast<long long>(par.sim_now),
                     static_cast<long long>(serial.sim_now),
                     static_cast<unsigned long long>(par.sim_events),
                     static_cast<unsigned long long>(serial.sim_events));
        return 1;
      }
      BenchResult r;
      r.name = "parallel_" + sc.name + "_w" + std::to_string(w);
      r.events_per_sec = static_cast<double>(par.sim_events) / par.wall_seconds;
      r.ref_events_per_sec = static_cast<double>(serial.sim_events) / serial.wall_seconds;
      r.speedup = serial.wall_seconds / par.wall_seconds;
      // The multi-segment worlds are the headline capability; fig8's ratio
      // is an overhead tracker (2 sites on one page cannot speed up, it
      // must just not collapse). Gates require the host to actually have
      // >= w cores — with fewer, the worker threads time-slice on one core
      // and the ratio measures the scheduler, not the simulator.
      const unsigned host_cores = std::thread::hardware_concurrency();
      r.gated = sc.name != "fig8" && host_cores >= static_cast<unsigned>(w);
      if (sc.name != "fig8" && !r.gated) {
        std::printf("note: %s ungated (host has %u core(s) < %d workers)\n",
                    r.name.c_str(), host_cores, w);
      }
      r.wall_seconds = par.wall_seconds;
      r.sim_events = par.sim_events;
      results.push_back(r);
      std::printf("%-22s %12.2f %12.0f %8.2fx\n", r.name.c_str(), r.wall_seconds * 1e3,
                  r.events_per_sec, r.speedup);
    }
  }

  if (json) {
    std::ofstream out(json_path);
    out << ToJson(results).ToString() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!baseline_path.empty()) {
    int bad = CheckBaseline(results, baseline_path, tolerance);
    if (bad > 0) {
      return 1;
    }
    std::printf("baseline check passed (%s, tolerance %.0f%%)\n", baseline_path.c_str(),
                tolerance * 100);
  }
  return 0;
}
