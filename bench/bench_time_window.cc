// E8/E11 — Figure 8 "Two Conflicting Read-Writers" and the §8 tuning
// guidance: throughput of the representative application as a function of
// the time window Delta; separately, the §7.3 system-throughput effect
// (a colocated compute process gets more cycles as Delta grows).
//
// Paper shape to reproduce:
//  * a steep "contention" side at small Delta (page conflicts dominate);
//  * a broad plateau of good throughput (the paper: 120 <= Delta <= 600 ms,
//    peaking around 115,000 read-write instructions/second);
//  * a gentle "retention" side beyond the peak (a process holds the page
//    longer than it needs);
//  * on the same site, background (non-DSM) throughput *improves* as Delta
//    grows — err on the retention side for overall system throughput.
#include <cstdio>
#include <iostream>

#include "src/trace/table.h"
#include "src/workload/background.h"
#include "src/workload/readwriters.h"

namespace {

double RunOne(msim::Duration window_us, msim::Duration offset_us, bool with_background,
              double* bg_rate) {
  msysv::WorldOptions opts;
  opts.protocol.default_window_us = window_us;
  msysv::World world(2, opts);
  mwork::ReadWritersParams prm;
  // ~0.8 s of decrement work per process per checkout epoch;
  // continuous demand, as in the loops of §8.
  prm.iterations = 50000;
  prm.start_offset_us = offset_us;
  auto app = mwork::LaunchReadWriters(world, prm);
  std::shared_ptr<mwork::BackgroundResult> background;
  if (with_background) {
    mwork::BackgroundParams bg;
    bg.site = 0;
    bg.unit_cost_us = 1000;
    background = mwork::LaunchBackground(world, bg);
  }
  world.RunUntil([&] { return app->completed; }, 600 * msim::kSecond);
  if (bg_rate != nullptr && background != nullptr) {
    *bg_rate = background->UnitsPerSecond();
  }
  return app->OpsPerSecond();
}

// Averages three start phases: the simulator is deterministic, so phase
// resonances between the two loops are averaged out explicitly.
double RunApp(msim::Duration window_us, bool with_background, double* bg_rate) {
  double sum = 0;
  double bg_sum = 0;
  const msim::Duration offsets[] = {0, 170 * msim::kMillisecond, 410 * msim::kMillisecond,
                                    730 * msim::kMillisecond, 1130 * msim::kMillisecond};
  constexpr int kRuns = 5;
  for (msim::Duration off : offsets) {
    double bg = 0;
    sum += RunOne(window_us, off, with_background, &bg);
    bg_sum += bg;
  }
  if (bg_rate != nullptr) {
    *bg_rate = bg_sum / kRuns;
  }
  return sum / kRuns;
}

}  // namespace

int main() {
  std::printf("Figure 8: two conflicting read-writers, throughput vs Delta\n\n");
  mtrace::TextTable fig8({"Delta (ms)", "read-write ops/s"});
  for (int delta_ms : {0, 10, 30, 60, 120, 200, 300, 450, 600, 900, 1200, 1600, 2000}) {
    double ops = RunApp(static_cast<msim::Duration>(delta_ms) * msim::kMillisecond,
                        /*with_background=*/false, nullptr);
    fig8.AddRow({mtrace::TextTable::Int(delta_ms), mtrace::TextTable::Num(ops, 0)});
  }
  fig8.Print(std::cout);
  std::printf("\npaper: steep contention side below ~120 ms, plateau to ~600 ms "
              "(peak ~115k ops/s),\ngentle retention falloff beyond the peak\n\n");

  std::printf("§7.3/§8: thrashing amelioration — background compute process at site 0\n");
  std::printf("(application throughput is traded for overall system throughput)\n\n");
  mtrace::TextTable amel({"Delta (ms)", "app ops/s", "background units/s"});
  for (int delta_ms : {0, 60, 300, 900, 2000}) {
    double bg = 0;
    double ops = RunApp(static_cast<msim::Duration>(delta_ms) * msim::kMillisecond,
                        /*with_background=*/true, &bg);
    amel.AddRow({mtrace::TextTable::Int(delta_ms), mtrace::TextTable::Num(ops, 0),
                 mtrace::TextTable::Num(bg, 1)});
  }
  amel.Print(std::cout);
  std::printf("\npaper: increasing Delta reduces the thrashing application's demand on the\n"
              "system; other processes get more cycles (the retention side is the safe side)\n");
  return 0;
}
