// E8/E11 — Figure 8 "Two Conflicting Read-Writers" and the §8 tuning
// guidance: throughput of the representative application as a function of
// the time window Delta; separately, the §7.3 system-throughput effect
// (a colocated compute process gets more cycles as Delta grows).
//
// Paper shape to reproduce:
//  * a steep "contention" side at small Delta (page conflicts dominate);
//  * a broad plateau of good throughput (the paper: 120 <= Delta <= 600 ms,
//    peaking around 115,000 read-write instructions/second);
//  * a gentle "retention" side beyond the peak (a process holds the page
//    longer than it needs);
//  * on the same site, background (non-DSM) throughput *improves* as Delta
//    grows — err on the retention side for overall system throughput.
//
// Both sweeps run on the experiment harness (src/exp): one declarative spec
// per table, repetitions = the five start phases (the simulator is
// deterministic, so phase resonances between the two loops are averaged out
// explicitly), executed on all available cores and merged in spec order.
// `examples/experiment_runner fig8` runs the same spec from the CLI.
#include <cstdio>
#include <iostream>

#include "src/exp/runner.h"
#include "src/trace/table.h"

namespace {

mexp::ExperimentSpec SweepSpec(std::vector<std::int64_t> delta_ms, bool with_background) {
  mexp::ExperimentSpec spec;
  spec.name = with_background ? "amelioration" : "fig8";
  spec.workload = "readwriters";
  spec.sites = {2};
  spec.delta_ms = std::move(delta_ms);
  // ~0.8 s of decrement work per process per checkout epoch; continuous
  // demand, as in the loops of §8.
  spec.iterations = 50000;
  spec.repetitions = 5;
  spec.phase_offsets_ms = {0, 170, 410, 730, 1130};
  spec.with_background = with_background;
  spec.max_time_s = 600;
  return spec;
}

}  // namespace

int main() {
  mexp::ExperimentRunner runner;

  std::printf("Figure 8: two conflicting read-writers, throughput vs Delta\n\n");
  mexp::ExperimentReport fig8_report = runner.Run(
      SweepSpec({0, 10, 30, 60, 120, 200, 300, 450, 600, 900, 1200, 1600, 2000}, false));
  mtrace::TextTable fig8({"Delta (ms)", "read-write ops/s"});
  for (const mexp::PointResult& pt : fig8_report.points) {
    fig8.AddRow({mtrace::TextTable::Int(pt.params.delta_ms),
                 mtrace::TextTable::Num(pt.metrics.at("throughput").Mean(), 0)});
  }
  fig8.Print(std::cout);
  std::printf("\npaper: steep contention side below ~120 ms, plateau to ~600 ms "
              "(peak ~115k ops/s),\ngentle retention falloff beyond the peak\n\n");

  std::printf("§7.3/§8: thrashing amelioration — background compute process at site 0\n");
  std::printf("(application throughput is traded for overall system throughput)\n\n");
  mexp::ExperimentReport amel_report = runner.Run(SweepSpec({0, 60, 300, 900, 2000}, true));
  mtrace::TextTable amel({"Delta (ms)", "app ops/s", "background units/s"});
  for (const mexp::PointResult& pt : amel_report.points) {
    amel.AddRow({mtrace::TextTable::Int(pt.params.delta_ms),
                 mtrace::TextTable::Num(pt.metrics.at("throughput").Mean(), 0),
                 mtrace::TextTable::Num(pt.metrics.at("background_units_per_s").Mean(), 1)});
  }
  amel.Print(std::cout);
  std::printf("\npaper: increasing Delta reduces the thrashing application's demand on the\n"
              "system; other processes get more cycles (the retention side is the safe side)\n");
  return 0;
}
