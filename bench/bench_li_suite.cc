// E15 (extension) — the synthetic application suite the paper discusses in
// §7.0 (Li's matrix multiply, dot product, traveling salesman), run over
// both Mirage and the Li/Hudak baseline, with worker-count scaling.
//
// These workloads complement the worst case: they are read-mostly with
// partitioned writes, so they show the regime where DSM *wins* — read
// copies replicate the inputs and most computation runs at memory speed.
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/baseline/li_engine.h"
#include "src/trace/table.h"
#include "src/workload/dotproduct.h"
#include "src/workload/matrix.h"
#include "src/workload/tsp.h"

namespace {

msysv::WorldOptions Backend(bool mirage_backend, msim::Duration window) {
  msysv::WorldOptions opts;
  if (mirage_backend) {
    opts.protocol.default_window_us = window;
  } else {
    opts.backend_factory = [](mos::Kernel* k, mirage::SegmentRegistry* reg,
                              mtrace::Tracer* tr) -> std::unique_ptr<mmem::DsmBackend> {
      return std::make_unique<mbase::LiEngine>(k, reg, tr);
    };
  }
  return opts;
}

struct Row {
  double seconds = 0;
  std::uint64_t packets = 0;
  bool verified = false;
};

Row RunMatrix(const msysv::WorldOptions& opts, int workers) {
  msysv::World w(workers, opts);
  mwork::MatrixParams prm;
  prm.n = 32;  // rows-per-worker blocks stay page-aligned for 1/2/4 workers
  prm.madd_cost_us = 200;
  prm.workers = workers;
  auto r = mwork::LaunchMatrixMultiply(w, prm);
  w.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
  return Row{r->ElapsedSeconds(), w.network().stats().packets, r->verified};
}

Row RunDot(const msysv::WorldOptions& opts, int workers) {
  msysv::World w(workers, opts);
  mwork::DotProductParams prm;
  prm.length = 8192;
  prm.madd_cost_us = 100;
  prm.workers = workers;
  auto r = mwork::LaunchDotProduct(w, prm);
  w.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
  return Row{r->ElapsedSeconds(), w.network().stats().packets, r->verified};
}

Row RunTsp(const msysv::WorldOptions& opts, int workers) {
  msysv::World w(workers, opts);
  mwork::TspParams prm;
  prm.cities = 9;
  prm.node_cost_us = 40;
  prm.workers = workers;
  auto r = mwork::LaunchTsp(w, prm);
  w.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
  return Row{r->ElapsedSeconds(), w.network().stats().packets, r->verified};
}

}  // namespace

int main() {
  std::printf("E15 — Li's synthetic suite over Mirage and the Li/Hudak baseline\n\n");

  mtrace::TextTable t({"application", "protocol", "workers", "time (s)", "messages",
                       "verified"});
  struct App {
    const char* name;
    Row (*run)(const msysv::WorldOptions&, int);
  };
  const App apps[] = {
      {"matrix multiply 32x32", RunMatrix},
      {"dot product 8192", RunDot},
      {"tsp 9 cities", RunTsp},
  };
  for (const App& app : apps) {
    for (int workers : {1, 2, 4}) {
      Row m = app.run(Backend(true, 33 * msim::kMillisecond), workers);
      t.AddRow({app.name, "Mirage d=33ms", mtrace::TextTable::Int(workers),
                mtrace::TextTable::Num(m.seconds, 3),
                mtrace::TextTable::Int(static_cast<long long>(m.packets)),
                m.verified ? "yes" : "NO"});
    }
    // Extension: the library services independent pages concurrently
    // (strictly ordered per page). The paper's library is fully serial.
    msysv::WorldOptions par = Backend(true, 33 * msim::kMillisecond);
    par.protocol.parallel_page_ops = true;
    Row mp = app.run(par, 4);
    t.AddRow({app.name, "Mirage parallel-lib", "4", mtrace::TextTable::Num(mp.seconds, 3),
              mtrace::TextTable::Int(static_cast<long long>(mp.packets)),
              mp.verified ? "yes" : "NO"});
    Row li = app.run(Backend(false, 0), 2);
    t.AddRow({app.name, "Li/Hudak", "2", mtrace::TextTable::Num(li.seconds, 3),
              mtrace::TextTable::Int(static_cast<long long>(li.packets)),
              li.verified ? "yes" : "NO"});
  }
  t.Print(std::cout);
  std::printf(
      "\nexpected shape: matrix multiply (compute-heavy, page-aligned partitions) gains\n"
      "from added workers; dot product at this size is communication-bound (input\n"
      "replication and lazy-remap costs swamp the 100 us multiply-adds), so its time is\n"
      "flat-to-worse with workers — the data-size sensitivity the paper calls out in\n"
      "§7.0; TSP sits between (read-mostly matrix + one hot incumbent word). Mirage and\n"
      "the baseline are close throughout because read-mostly sharing rarely invokes the\n"
      "window at all.\n");
  return 0;
}
