// E14 — §10: "in a network with a larger number of sites sharing pages than
// ours, invalidations may become expensive."
//
// N-1 sites hold read copies of a hot page; one site then writes it. The
// clock site must invalidate every other reader sequentially point-to-point
// (no multicast in Locus, §7.1 caveat 2) before the write is granted, so
// write latency grows linearly in the reader count.
//
// The sweep runs on the experiment harness (src/exp); the same spec widened
// with a frame-loss axis is `examples/experiment_runner scalematrix`.
#include <cstdio>
#include <iostream>

#include "src/exp/runner.h"
#include "src/trace/table.h"

int main() {
  mexp::ExperimentSpec spec;
  spec.name = "scalability";
  spec.workload = "scalability";
  spec.sites = {2, 3, 4, 6, 8, 10, 12};
  // A modest window keeps the hot page with the writer long enough to
  // write; at Delta=0 the always-hungry readers steal the page back first
  // and the system thrashes (§5.0's pathological case).
  spec.delta_ms = {50};
  spec.rounds = 8;
  spec.max_time_s = 600;

  mexp::ExperimentReport report = mexp::ExperimentRunner().Run(spec);

  std::printf("E14 — invalidation cost vs number of reader sites\n");
  std::printf("(one writer; N-1 sites hold read copies of the hot page)\n\n");
  mtrace::TextTable t({"sites", "readers invalidated", "mean write latency (ms)",
                       "invalidations/round", "completed"});
  for (const mexp::PointResult& pt : report.points) {
    t.AddRow({mtrace::TextTable::Int(pt.params.sites),
              mtrace::TextTable::Int(pt.params.sites - 1),
              mtrace::TextTable::Num(pt.metrics.at("mean_write_latency_ms").Mean(), 1),
              mtrace::TextTable::Num(pt.metrics.at("invalidations_per_round").Mean(), 1),
              pt.metrics.at("completed").Mean() == 1.0 ? "yes" : "NO"});
  }
  t.Print(std::cout);
  std::printf("\nexpected shape: latency linear in the reader count (sequential\n"
              "point-to-point invalidations with acknowledgements)\n");
  return 0;
}
