// E14 — §10: "in a network with a larger number of sites sharing pages than
// ours, invalidations may become expensive."
//
// N-1 sites hold read copies of a hot page; one site then writes it. The
// clock site must invalidate every other reader sequentially point-to-point
// (no multicast in Locus, §7.1 caveat 2) before the write is granted, so
// write latency grows linearly in the reader count.
#include <cstdio>
#include <iostream>

#include "src/trace/table.h"
#include "src/workload/scalability.h"

namespace {

struct Out {
  double mean_write_ms = 0;
  double invalidations_per_round = 0;
  bool completed = false;
};

Out Run(int sites) {
  msysv::WorldOptions opts;
  // A modest window keeps the hot page with the writer long enough to
  // write; at Delta=0 the always-hungry readers steal the page back first
  // and the system thrashes (§5.0's pathological case).
  opts.protocol.default_window_us = 50 * msim::kMillisecond;
  msysv::World world(sites, opts);
  mwork::ScalabilityParams prm;
  prm.rounds = 8;
  auto r = mwork::LaunchScalability(world, prm);
  Out out;
  out.completed = world.RunUntil([&] { return r->completed; }, 600 * msim::kSecond);
  out.mean_write_ms = r->MeanWriteLatencyMs();
  std::uint64_t inv = 0;
  for (int s = 0; s < sites; ++s) {
    inv += world.engine(s)->stats().local_invalidations;
  }
  out.invalidations_per_round = static_cast<double>(inv) / prm.rounds;
  return out;
}

}  // namespace

int main() {
  std::printf("E14 — invalidation cost vs number of reader sites\n");
  std::printf("(one writer; N-1 sites hold read copies of the hot page)\n\n");
  mtrace::TextTable t({"sites", "readers invalidated", "mean write latency (ms)",
                       "invalidations/round", "completed"});
  for (int sites : {2, 3, 4, 6, 8, 10, 12}) {
    Out o = Run(sites);
    t.AddRow({mtrace::TextTable::Int(sites), mtrace::TextTable::Int(sites - 1),
              mtrace::TextTable::Num(o.mean_write_ms, 1),
              mtrace::TextTable::Num(o.invalidations_per_round, 1),
              o.completed ? "yes" : "NO"});
  }
  t.Print(std::cout);
  std::printf("\nexpected shape: latency linear in the reader count (sequential\n"
              "point-to-point invalidations with acknowledgements)\n");
  return 0;
}
