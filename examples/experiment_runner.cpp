// The experiment harness CLI: declarative parameter sweeps executed on a
// worker-thread pool, with streaming statistics and machine-readable output.
//
// Usage:
//   experiment_runner [preset | --spec=FILE.json] [options]
//
// Presets:
//   fig8         the paper's Figure 8 Delta sweep (two conflicting
//                read-writers; matches bench_time_window's numbers)
//   amelioration §7.3/§8 background-throughput sweep (bench_time_window's
//                second table)
//   scalematrix  sites x frame-loss invalidation-scaling matrix
//                (bench_scalability's sweep, widened with a loss axis)
//   availability library-site failover sweep: ping-pong with the segment
//                homed on a pure-controller site (--lib=2), with and
//                without crashing it mid-run, across site counts and
//                replication degrees k=1..3 — the fraction of runs that
//                keep completing measures how well segments survive
//                controller loss, pages_lost measures what a data-holder
//                crash destroys at each k, and the fault-free plan prices
//                the quorum-write latency cost of k
//   kvstore      open-loop KV serving over dsmlib's DistHashMap: zipf
//                skew x get/set mix x Delta x data replicas — hot-key
//                throughput degrades as zipf-s rises and kv_replicas=2
//                recovers it for read-heavy mixes
//
// Axis/override options (comma-separated lists make a grid):
//   --workload=W             readwriters|pingpong|spinlock|scalability|matrix|dot|tsp|kvstore
//   --sites=2,4,8            site-count axis
//   --delta=0,120,600        time-window axis (ms)
//   --quantum=6              scheduling-quantum axis (ticks)
//   --segbytes=512           segment-size axis (bytes)
//   --loss=0,0.02            frame-loss axis (probability)
//   --replicas=1,2,3         page-replication-degree axis (1 = single copy)
//   --zipf=0,0.9,1.3         kvstore key-popularity-skew axis
//   --mix=0.5,0.95           kvstore get-fraction axis
//   --kvreplicas=1,2         kvstore data-replication axis (table copies)
//   --cost=ethernet1989,rdma cost-model preset axis (network/CPU constants)
//   --keys=N --rate=R --kvops=N
//                            kvstore key space, per-site arrival rate (/s),
//                            and generated ops per site
//   --reps=5                 repetitions per grid point
//   --offsets=0,170,410      per-repetition start phases (ms)
//   --seed=N                 spec seed (per-run seeds derive from it)
//   --iters=N --rounds=N     workload sizes
//   --lib=S                  pre-create the segment at site S (its library
//                            site) so a crash plan can target a pure
//                            controller (pingpong/readwriters)
//   --crash=S@T --pause=S@T1:T2 --cut=A-B@T1:T2
//                            add one fault plan (repeatable; scenario_runner
//                            syntax, times in ms)
//   --recover=T:SITE         revive a crashed site at T ms (appends to the
//                            most recent fault plan, so place it after the
//                            --crash it undoes)
//   --max-time-s=600         per-run simulated-time cap
//
// Execution and output:
//   --threads=N     worker threads (default: hardware concurrency). The
//                   report is byte-identical for every N. Independently,
//                   MIRAGE_SIM_WORKERS=K parallelizes eligible single runs
//                   inside the simulator (DESIGN.md #12) - also
//                   byte-identical for every K.
//   --out=FILE      write the JSON report (default: stdout)
//   --csv=FILE      also write the long-form CSV
//   --baseline=FILE diff against a stored JSON report; regressions beyond
//                   --tolerance (default 0.10) exit non-zero
//   --quiet         no stderr progress ticker
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/net/cost_model.h"
#include "src/trace/table.h"

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(item);
  }
  return out;
}

template <typename T, typename Fn>
bool ParseList(const std::string& arg, std::vector<T>* out, Fn convert) {
  std::vector<T> vals;
  for (const std::string& s : SplitCommas(arg)) {
    if (s.empty()) {
      return false;
    }
    vals.push_back(convert(s));
  }
  if (vals.empty()) {
    return false;
  }
  *out = std::move(vals);
  return true;
}

mexp::ExperimentSpec Fig8Spec() {
  mexp::ExperimentSpec spec;
  spec.name = "fig8";
  spec.workload = "readwriters";
  spec.sites = {2};
  spec.delta_ms = {0, 10, 30, 60, 120, 200, 300, 450, 600, 900, 1200, 1600, 2000};
  spec.repetitions = 5;
  spec.phase_offsets_ms = {0, 170, 410, 730, 1130};
  spec.iterations = 50000;
  spec.max_time_s = 600;
  return spec;
}

mexp::ExperimentSpec AmeliorationSpec() {
  mexp::ExperimentSpec spec = Fig8Spec();
  spec.name = "amelioration";
  spec.delta_ms = {0, 60, 300, 900, 2000};
  spec.with_background = true;
  return spec;
}

mexp::ExperimentSpec ScaleMatrixSpec() {
  mexp::ExperimentSpec spec;
  spec.name = "scalematrix";
  spec.workload = "scalability";
  // Extends well past the paper's testbed: the wide tail (up to 512 sites,
  // SiteMask is 512 bits wide) maps how sequential point-to-point
  // invalidation scales, and is where the parallel simulator core pays off
  // (run with MIRAGE_SIM_WORKERS=4; the loss-free points are eligible).
  spec.sites = {2, 3, 4, 6, 8, 10, 12, 16, 32, 64, 128, 256, 512};
  spec.delta_ms = {50};
  spec.loss = {0.0, 0.01};
  spec.rounds = 8;
  spec.repetitions = 1;
  spec.max_time_s = 600;
  return spec;
}

mexp::ExperimentSpec AvailabilitySpec() {
  mexp::ExperimentSpec spec;
  spec.name = "availability";
  spec.workload = "pingpong";
  spec.sites = {3, 4, 6, 8};
  spec.delta_ms = {0};
  spec.rounds = 40;
  spec.repetitions = 3;
  // The segment lives on site 2, a pure controller: the ping-pong players
  // (sites 0 and 1) hold every copy, so crashing the library tests failover
  // alone, not data loss.
  spec.library_site = 2;
  // Replication axis: k=1 is the paper's single-copy protocol, k=2..3 add
  // quorum-replicated standbys. The fault-free plan prices the quorum-write
  // latency of each k; crash_holder shows what a data-holder crash destroys
  // (pages_lost > 0 only at k=1).
  spec.replicas = {1, 2, 3};
  mexp::FaultPlanSpec none;
  none.name = "none";
  spec.fault_plans.push_back(std::move(none));
  mexp::FaultPlanSpec crash;
  crash.name = "crash_library";
  crash.plan.CrashAt(50 * msim::kMillisecond, 2);
  spec.fault_plans.push_back(std::move(crash));
  // Crash a ping-pong player (site 1) mid-run: it holds page copies, so this
  // plan measures data survival, not just controller failover. The run can't
  // complete (a player died) — pages_lost is the metric of interest.
  mexp::FaultPlanSpec holder;
  holder.name = "crash_holder";
  holder.plan.CrashAt(50 * msim::kMillisecond, 1);
  spec.fault_plans.push_back(std::move(holder));
  // The full crash-recovery lifecycle: the dead player rejoins at 150 ms
  // with amnesia, re-admits through the epoch-fenced handshake, and is
  // pulled back into the standby set. The report gains mttr_ms /
  // resurrected_pages (only this plan emits them); at k>=2 the rejoin
  // re-attains full k-replica coverage and pages_lost stays 0.
  mexp::FaultPlanSpec rejoin;
  rejoin.name = "crash_holder_rejoin";
  rejoin.plan.CrashAt(50 * msim::kMillisecond, 1);
  rejoin.plan.RecoverAt(150 * msim::kMillisecond, 1);
  spec.fault_plans.push_back(std::move(rejoin));
  spec.max_time_s = 60;
  return spec;
}

mexp::ExperimentSpec KvStoreSpec() {
  mexp::ExperimentSpec spec;
  spec.name = "kvstore";
  spec.workload = "kvstore";
  spec.sites = {4};
  spec.delta_ms = {0, 30};
  // The skew sensitivity story in one CI-sized grid. At kv_replicas=1 and
  // the read-heavy mix, rising zipf-s concentrates traffic on one shard's
  // home: throughput falls, get latency climbs, and lib_load_max_share
  // shows the pile-up. A second data replica recovers the read side — get
  // latency and library balance go flat across the whole sweep — at a flat
  // write-amplification cost in throughput; the write-heavy mix pays double
  // for every set and shows the replication tax undiluted.
  spec.zipf_s = {0.0, 0.9, 1.3};
  spec.get_mix = {0.5, 0.95};
  spec.kv_replicas = {1, 2};
  // 3 reps x 400 ops/site: enough load past warm-up for the trends above to
  // be monotone rather than seed noise, still ~seconds of wall time.
  spec.repetitions = 3;
  spec.kv_ops_per_site = 400;
  spec.kv_arrival_per_s = 240.0;
  spec.max_time_s = 120;
  return spec;
}

bool LoadSpecFile(const std::string& path, mexp::ExperimentSpec* spec) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open spec file '%s'\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string error;
  mexp::Json j = mexp::Json::Parse(buf.str(), &error);
  if (!error.empty()) {
    std::fprintf(stderr, "spec parse error: %s\n", error.c_str());
    return false;
  }
  if (!mexp::ExperimentSpec::FromJson(j, spec, &error)) {
    std::fprintf(stderr, "bad spec: %s\n", error.c_str());
    return false;
  }
  return true;
}

// Console summary: one row per grid point with the headline metrics.
void PrintSummary(const mexp::ExperimentReport& report) {
  mtrace::TextTable t({"point", "sites", "Delta (ms)", "loss", "repl", "faults", "metric",
                       "mean", "min", "max", "ci95"});
  int index = 0;
  for (const mexp::PointResult& pt : report.points) {
    // The headline metric: throughput when present, else the workload's
    // primary latency/elapsed figure.
    const char* headline = pt.metrics.count("throughput") != 0 ? "throughput"
                           : pt.metrics.count("mean_write_latency_ms") != 0
                               ? "mean_write_latency_ms"
                               : "elapsed_s";
    auto it = pt.metrics.find(headline);
    if (it == pt.metrics.end()) {
      continue;
    }
    const mexp::StatsAccumulator& acc = it->second;
    t.AddRow({mtrace::TextTable::Int(index++), mtrace::TextTable::Int(pt.params.sites),
              mtrace::TextTable::Int(static_cast<int>(pt.params.delta_ms)),
              mtrace::TextTable::Num(pt.params.loss, 3),
              mtrace::TextTable::Int(pt.params.replicas), pt.params.fault_plan, headline,
              mtrace::TextTable::Num(acc.Mean(), 1), mtrace::TextTable::Num(acc.Min(), 1),
              mtrace::TextTable::Num(acc.Max(), 1),
              mtrace::TextTable::Num(acc.Ci95HalfWidth(), 1)});
  }
  t.Print(std::cerr);
}

}  // namespace

int main(int argc, char** argv) {
  mexp::ExperimentSpec spec;
  bool have_spec = false;
  int threads = 0;
  bool quiet = false;
  std::string out_path;
  std::string csv_path;
  std::string baseline_path;
  double tolerance = 0.10;
  int next_plan = 1;

  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    auto value = [&s]() { return s.substr(s.find('=') + 1); };
    bool ok = true;
    if (s == "fig8") {
      spec = Fig8Spec();
      have_spec = true;
    } else if (s == "amelioration") {
      spec = AmeliorationSpec();
      have_spec = true;
    } else if (s == "scalematrix") {
      spec = ScaleMatrixSpec();
      have_spec = true;
    } else if (s == "availability") {
      spec = AvailabilitySpec();
      have_spec = true;
    } else if (s == "kvstore") {
      spec = KvStoreSpec();
      have_spec = true;
    } else if (s.rfind("--spec=", 0) == 0) {
      if (!LoadSpecFile(value(), &spec)) {
        return 2;
      }
      have_spec = true;
    } else if (s.rfind("--workload=", 0) == 0) {
      spec.workload = value();
    } else if (s.rfind("--sites=", 0) == 0) {
      ok = ParseList<int>(value(), &spec.sites,
                          [](const std::string& v) { return std::atoi(v.c_str()); });
    } else if (s.rfind("--delta=", 0) == 0) {
      ok = ParseList<std::int64_t>(value(), &spec.delta_ms,
                                   [](const std::string& v) { return std::atol(v.c_str()); });
    } else if (s.rfind("--quantum=", 0) == 0) {
      ok = ParseList<int>(value(), &spec.quantum_ticks,
                          [](const std::string& v) { return std::atoi(v.c_str()); });
    } else if (s.rfind("--segbytes=", 0) == 0) {
      ok = ParseList<std::uint32_t>(value(), &spec.segment_bytes, [](const std::string& v) {
        return static_cast<std::uint32_t>(std::atol(v.c_str()));
      });
    } else if (s.rfind("--loss=", 0) == 0) {
      ok = ParseList<double>(value(), &spec.loss,
                             [](const std::string& v) { return std::atof(v.c_str()); });
    } else if (s.rfind("--replicas=", 0) == 0) {
      ok = ParseList<int>(value(), &spec.replicas,
                          [](const std::string& v) { return std::atoi(v.c_str()); });
    } else if (s.rfind("--zipf=", 0) == 0) {
      ok = ParseList<double>(value(), &spec.zipf_s,
                             [](const std::string& v) { return std::atof(v.c_str()); });
    } else if (s.rfind("--mix=", 0) == 0) {
      ok = ParseList<double>(value(), &spec.get_mix,
                             [](const std::string& v) { return std::atof(v.c_str()); });
    } else if (s.rfind("--kvreplicas=", 0) == 0) {
      ok = ParseList<int>(value(), &spec.kv_replicas,
                          [](const std::string& v) { return std::atoi(v.c_str()); });
    } else if (s.rfind("--cost=", 0) == 0) {
      ok = ParseList<std::string>(value(), &spec.cost_presets,
                                  [](const std::string& v) { return v; });
      for (const std::string& cp : spec.cost_presets) {
        mnet::CostModel unused;
        if (!mnet::CostModel::FromName(cp, &unused)) {
          std::fprintf(stderr, "unknown cost preset '%s' (ethernet1989, rdma)\n", cp.c_str());
          return 2;
        }
      }
    } else if (s.rfind("--keys=", 0) == 0) {
      spec.kv_keys = static_cast<std::uint32_t>(std::atol(value().c_str()));
    } else if (s.rfind("--rate=", 0) == 0) {
      spec.kv_arrival_per_s = std::atof(value().c_str());
    } else if (s.rfind("--kvops=", 0) == 0) {
      spec.kv_ops_per_site = static_cast<std::uint32_t>(std::atol(value().c_str()));
    } else if (s.rfind("--offsets=", 0) == 0) {
      ok = ParseList<std::int64_t>(value(), &spec.phase_offsets_ms,
                                   [](const std::string& v) { return std::atol(v.c_str()); });
    } else if (s.rfind("--reps=", 0) == 0) {
      spec.repetitions = std::atoi(value().c_str());
    } else if (s.rfind("--seed=", 0) == 0) {
      spec.seed = std::strtoull(value().c_str(), nullptr, 0);
    } else if (s.rfind("--iters=", 0) == 0) {
      spec.iterations = std::atoi(value().c_str());
    } else if (s.rfind("--rounds=", 0) == 0) {
      spec.rounds = std::atoi(value().c_str());
    } else if (s.rfind("--lib=", 0) == 0) {
      spec.library_site = std::atoi(value().c_str());
    } else if (s.rfind("--max-time-s=", 0) == 0) {
      spec.max_time_s = std::atol(value().c_str());
    } else if (s.rfind("--crash=", 0) == 0) {
      int site = 0;
      long t = 0;
      if (std::sscanf(s.c_str() + 8, "%d@%ld", &site, &t) != 2) {
        std::fprintf(stderr, "bad --crash, want S@Tms\n");
        return 2;
      }
      mexp::FaultPlanSpec fp;
      fp.name = "crash" + std::to_string(next_plan++);
      fp.plan.CrashAt(t * msim::kMillisecond, site);
      spec.fault_plans.push_back(std::move(fp));
    } else if (s.rfind("--recover=", 0) == 0) {
      long t = 0;
      int site = 0;
      if (std::sscanf(s.c_str() + 10, "%ld:%d", &t, &site) != 2) {
        std::fprintf(stderr, "bad --recover, want Tms:SITE\n");
        return 2;
      }
      if (spec.fault_plans.empty()) {
        std::fprintf(stderr, "--recover needs a preceding --crash plan to extend\n");
        return 2;
      }
      spec.fault_plans.back().plan.RecoverAt(t * msim::kMillisecond, site);
    } else if (s.rfind("--pause=", 0) == 0) {
      int site = 0;
      long t1 = 0, t2 = 0;
      if (std::sscanf(s.c_str() + 8, "%d@%ld:%ld", &site, &t1, &t2) != 3 || t2 < t1) {
        std::fprintf(stderr, "bad --pause, want S@T1:T2 ms\n");
        return 2;
      }
      mexp::FaultPlanSpec fp;
      fp.name = "pause" + std::to_string(next_plan++);
      fp.plan.PauseAt(t1 * msim::kMillisecond, site).ResumeAt(t2 * msim::kMillisecond, site);
      spec.fault_plans.push_back(std::move(fp));
    } else if (s.rfind("--cut=", 0) == 0) {
      int sa = 0, sb = 0;
      long t1 = 0, t2 = 0;
      if (std::sscanf(s.c_str() + 6, "%d-%d@%ld:%ld", &sa, &sb, &t1, &t2) != 4 || t2 < t1) {
        std::fprintf(stderr, "bad --cut, want A-B@T1:T2 ms\n");
        return 2;
      }
      mexp::FaultPlanSpec fp;
      fp.name = "cut" + std::to_string(next_plan++);
      fp.plan.PartitionAt(t1 * msim::kMillisecond, sa, sb)
          .HealAt(t2 * msim::kMillisecond, sa, sb);
      spec.fault_plans.push_back(std::move(fp));
    } else if (s.rfind("--threads=", 0) == 0) {
      threads = std::atoi(value().c_str());
    } else if (s.rfind("--out=", 0) == 0) {
      out_path = value();
    } else if (s.rfind("--csv=", 0) == 0) {
      csv_path = value();
    } else if (s.rfind("--baseline=", 0) == 0) {
      baseline_path = value();
    } else if (s.rfind("--tolerance=", 0) == 0) {
      tolerance = std::atof(value().c_str());
    } else if (s == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (see the header comment for usage)\n",
                   s.c_str());
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad list in '%s'\n", s.c_str());
      return 2;
    }
  }
  (void)have_spec;  // flags alone define a valid default spec

  if (!mexp::KnownWorkload(spec.workload)) {
    std::fprintf(stderr, "unknown workload '%s'\n", spec.workload.c_str());
    return 2;
  }

  mexp::ExperimentRunner runner(threads);
  int total_runs = spec.PointCount() * spec.repetitions;
  if (!quiet) {
    std::fprintf(stderr, "%s: %d points x %d reps = %d runs on %d threads\n",
                 spec.name.c_str(), spec.PointCount(), spec.repetitions, total_runs,
                 runner.threads());
  }
  std::mutex progress_mu;
  auto progress = [&](int done, int total) {
    if (quiet) {
      return;
    }
    std::lock_guard<std::mutex> lock(progress_mu);
    std::fprintf(stderr, "\r%d/%d runs", done, total);
    if (done == total) {
      std::fprintf(stderr, "\n");
    }
  };
  mexp::ExperimentReport report = runner.Run(spec, progress);

  mexp::Json doc = mexp::ReportToJson(report);
  if (out_path.empty()) {
    doc.Dump(std::cout);
    std::cout << "\n";
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    doc.Dump(out);
    out << "\n";
    if (!quiet) {
      std::fprintf(stderr, "report: %s\n", out_path.c_str());
    }
  }
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::fprintf(stderr, "cannot write '%s'\n", csv_path.c_str());
      return 2;
    }
    mexp::WriteCsv(report, csv);
    if (!quiet) {
      std::fprintf(stderr, "csv: %s\n", csv_path.c_str());
    }
  }
  if (!quiet) {
    PrintSummary(report);
  }
  if (report.failed_runs > 0) {
    std::fprintf(stderr, "%d run(s) failed\n", report.failed_runs);
    return 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot open baseline '%s'\n", baseline_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    mexp::Json base = mexp::Json::Parse(buf.str(), &error);
    if (!error.empty()) {
      std::fprintf(stderr, "baseline parse error: %s\n", error.c_str());
      return 2;
    }
    std::vector<mexp::DiffEntry> diffs = mexp::DiffReports(base, doc, tolerance);
    int regressions = 0;
    for (const mexp::DiffEntry& d : diffs) {
      if (d.regression) {
        ++regressions;
      }
      std::fprintf(stderr, "%s  %s: %s -> %s (%+.1f%%)%s\n", d.point.c_str(),
                   d.metric.c_str(), mexp::Json::NumberToString(d.baseline).c_str(),
                   mexp::Json::NumberToString(d.current).c_str(), d.rel_change * 100.0,
                   d.regression ? "  REGRESSION" : "");
    }
    if (regressions > 0) {
      std::fprintf(stderr, "%d regression(s) beyond %.0f%% tolerance\n", regressions,
                   tolerance * 100.0);
      return 1;
    }
    std::fprintf(stderr, "baseline diff: no regressions beyond %.0f%% tolerance\n",
                 tolerance * 100.0);
  }
  return 0;
}
