// The library site's request log and its analysis (paper §9).
//
// Runs a mixed workload — one hot ping-pong page, one single-site page, one
// read-mostly page — with request logging enabled, then plays the role of
// the paper's envisioned "user-level process [that] could analyze these
// reference strings": per-page heat, alternation, window advice for the hot
// spot, and a library-migration hint.
#include <cstdio>
#include <iostream>

#include "src/mirage/log_analysis.h"
#include "src/trace/table.h"
#include "src/sysv/world.h"

namespace {

using mos::Priority;
using mos::Process;
using msim::Task;

}  // namespace

int main() {
  msysv::WorldOptions opts;
  opts.protocol.enable_request_log = true;
  msysv::World world(3, opts);
  int id = world.shm(0).Shmget(0x10C, 3 * mmem::kPageSize, /*create=*/true).value();

  int finished = 0;
  // Sites 1 and 2 ping-pong writes on page 0 and occasionally read page 2.
  for (int s : {1, 2}) {
    world.kernel(s).Spawn("mixed-" + std::to_string(s), Priority::kUser,
                          [&world, s, id, &finished](Process* p) -> Task<> {
                            auto& shm = world.shm(s);
                            mmem::VAddr base = shm.Shmat(p, id).value();
                            for (int i = 0; i < 25; ++i) {
                              co_await shm.WriteWord(p, base + 4 * s, i);
                              (void)co_await shm.ReadWord(p, base + 2 * mmem::kPageSize);
                              co_await world.kernel(s).Compute(p, 20 * msim::kMillisecond);
                            }
                            ++finished;
                          });
  }
  // Site 0 (the library site) works a private page; its accesses never
  // reach the log once it holds the page — the §9 blind spot.
  world.kernel(0).Spawn("local", Priority::kUser,
                        [&world, id, &finished](Process* p) -> Task<> {
                          auto& shm = world.shm(0);
                          mmem::VAddr base = shm.Shmat(p, id).value();
                          for (int i = 0; i < 200; ++i) {
                            co_await shm.WriteWord(p, base + mmem::kPageSize, i);
                            co_await world.kernel(0).Compute(p, 5 * msim::kMillisecond);
                          }
                          ++finished;
                        });
  if (!world.RunUntil([&] { return finished == 3; }, 300 * msim::kSecond)) {
    std::printf("workload did not finish\n");
    return 1;
  }

  mirage::LogAnalyzer analyzer(&world.engine(0)->request_log());
  mirage::SegmentReport report = analyzer.Analyze(id);

  std::printf("Reference-string analysis of segment %d (library at site 0)\n", id);
  std::printf("===========================================================\n\n");
  std::printf("%d requests reached the library:\n\n", report.total_requests);
  mtrace::TextTable t({"page", "requests", "writes", "sites", "alternation", "median gap (ms)"});
  for (const mirage::PageHeat& h : report.pages) {
    t.AddRow({mtrace::TextTable::Int(h.page), mtrace::TextTable::Int(h.requests),
              mtrace::TextTable::Int(h.write_requests), mtrace::TextTable::Int(h.distinct_sites),
              mtrace::TextTable::Num(h.AlternationFraction(), 2),
              mtrace::TextTable::Num(msim::ToMilliseconds(h.median_interarrival_us), 1)});
  }
  t.Print(std::cout);

  std::printf("\nrequests by site:");
  for (const auto& [site, n] : report.requests_by_site) {
    std::printf("  site %d: %d", site, n);
  }
  std::printf("\nnote: site 0's own page-1 traffic is absent — accesses satisfied by a\n");
  std::printf("valid local copy never reach the library (§9's stated limitation).\n\n");

  auto advice = analyzer.SuggestWindows(id);
  std::printf("window advice (hot alternating pages only):\n");
  for (const auto& [page, window] : advice) {
    std::printf("  page %d -> Delta = %.0f ms (2x its median inter-request gap)\n", page,
                msim::ToMilliseconds(window));
    world.engine(0)->SetPageWindow(id, page, window);
  }
  if (advice.empty()) {
    std::printf("  (none)\n");
  }

  auto migrate = analyzer.SuggestLibraryMigration(id, /*current_library=*/0);
  if (migrate.has_value()) {
    std::printf("\nmigration hint: move the library (or the processes) toward site %d\n",
                *migrate);
  } else {
    std::printf("\nmigration hint: none — no site dominates the reference string\n");
  }
  return 0;
}
