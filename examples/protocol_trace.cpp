// A guided protocol trace: one ping-pong exchange with every protocol event
// printed — the live version of the paper's Figures 5 and 6 (page modes and
// message sequence during the worst-case application).
#include <cstdio>
#include <iostream>
#include <string>

#include "src/sysv/world.h"

using mos::Priority;
using mos::Process;
using msim::Task;

int main(int argc, char** argv) {
  bool use_yield = !(argc > 1 && std::string(argv[1]) == "noyield");
  std::printf("One ping-pong exchange under Mirage, traced (%s)\n",
              use_yield ? "spin loops yield()" : "busy-waiting spin loops");
  std::printf("====================================================\n\n");

  msysv::WorldOptions opts;
  opts.enable_trace = true;
  opts.protocol.default_window_us = 0;
  msysv::World world(2, opts);
  int id = world.shm(0).Shmget(77, 512, true).value();
  bool done1 = false;
  bool done2 = false;

  world.kernel(0).Spawn("p1", Priority::kUser, [&](Process* p) -> Task<> {
    auto& shm = world.shm(0);
    mmem::VAddr base = shm.Shmat(p, id).value();
    for (int i = 0; i < 2; ++i) {
      co_await shm.WriteWord(p, base + 8 * i, 0x10000u + i);
      for (;;) {
        std::uint32_t v = co_await shm.ReadWord(p, base + 8 * i + 4);
        if (v == 0x20000u + i) {
          break;
        }
        co_await world.kernel(0).Compute(p, 25);
        if (use_yield) {
          co_await world.kernel(0).Yield(p);
        }
      }
    }
    done1 = true;
  });
  world.kernel(1).Spawn("p2", Priority::kUser, [&](Process* p) -> Task<> {
    auto& shm = world.shm(1);
    mmem::VAddr base = shm.Shmat(p, id).value();
    for (int i = 0; i < 2; ++i) {
      for (;;) {
        std::uint32_t v = co_await shm.ReadWord(p, base + 8 * i);
        if (v == 0x10000u + i) {
          break;
        }
        co_await world.kernel(1).Compute(p, 25);
        if (use_yield) {
          co_await world.kernel(1).Yield(p);
        }
      }
      co_await shm.WriteWord(p, base + 8 * i + 4, 0x20000u + i);
    }
    done2 = true;
  });

  bool ok = world.RunUntil([&] { return done1 && done2; }, 10 * msim::kSecond);
  world.tracer().Print(std::cout);
  std::printf("\n%s after %.1f ms; %llu messages (%llu short, %llu page-carrying)\n",
              ok ? "completed" : "TIMED OUT", msim::ToMilliseconds(world.sim().Now()),
              static_cast<unsigned long long>(world.network().stats().packets),
              static_cast<unsigned long long>(world.network().stats().short_packets),
              static_cast<unsigned long long>(world.network().stats().large_packets));
  std::printf("\nHow to read it: the library at site 0 serializes requests; DOWNGRADE is\n");
  std::printf("optimization 2 (the writer keeps a read copy); UPGRADE_WRITER is\n");
  std::printf("optimization 1 (a reader becomes writer with no page transfer).\n");
  return ok ? 0 : 1;
}
