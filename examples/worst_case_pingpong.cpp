// The paper's worst-case application (Figure 4) in all three configurations
// from §7.2/§7.3: single-site with and without yield(), and two-site with a
// sweep over the time window Delta.
#include <cstdio>
#include <iostream>

#include "src/trace/table.h"
#include "src/workload/pingpong.h"

namespace {

double RunPingPong(int sites, bool use_yield, msim::Duration window_us, int rounds) {
  msysv::WorldOptions opts;
  opts.protocol.default_window_us = window_us;
  msysv::World world(sites >= 2 ? sites : 1, opts);
  mwork::PingPongParams prm;
  prm.rounds = rounds;
  prm.use_yield = use_yield;
  prm.site_a = 0;
  prm.site_b = sites >= 2 ? 1 : 0;
  auto result = mwork::LaunchPingPong(world, prm);
  world.RunUntil([&] { return result->completed(); }, 600 * msim::kSecond);
  return result->CyclesPerSecond();
}

}  // namespace

int main() {
  std::printf("Worst-case ping-pong application (paper Figure 4)\n\n");

  std::printf("Single site (paper: 5 cycles/s busy-waiting, 166 cycles/s with yield):\n");
  std::printf("  without yield(): %7.1f cycles/s\n", RunPingPong(1, false, 0, 40));
  std::printf("  with    yield(): %7.1f cycles/s\n\n", RunPingPong(1, true, 0, 2000));

  std::printf("Two sites, throughput vs Delta (paper Figure 7):\n");
  mtrace::TextTable table({"Delta (ticks)", "yield (cycles/s)", "no yield (cycles/s)"});
  const msim::Duration tick = mos::SchedulerConfig{}.tick_us;
  for (int dticks : {0, 1, 2, 4, 6, 8, 10}) {
    double with_yield = RunPingPong(2, true, dticks * tick, 40);
    double without = RunPingPong(2, false, dticks * tick, 40);
    table.AddRow({mtrace::TextTable::Int(dticks), mtrace::TextTable::Num(with_yield, 2),
                  mtrace::TextTable::Num(without, 2)});
  }
  table.Print(std::cout);
  return 0;
}
