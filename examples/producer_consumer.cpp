// A producer/consumer pipeline over distributed shared memory.
//
// Demonstrates the user-level layer of §5.1 (a ring buffer plus an event
// flag built on ordinary shared words) and the §8 layout lesson: whether
// the queue's indexes should share a page with its slots ("compact") or be
// padded onto private pages depends on how much work each item carries —
// the example maps the crossover.
#include <cstdio>
#include <iostream>

#include "src/dsmlib/ring_buffer.h"
#include "src/dsmlib/sync.h"
#include "src/trace/table.h"
#include "src/sysv/world.h"

namespace {

using mos::Priority;
using mos::Process;
using msim::Task;

struct Outcome {
  double items_per_sec = 0;
  std::uint64_t page_transfers = 0;
  bool all_items_intact = false;
};

Outcome RunPipeline(bool padded, msim::Duration item_cost_us, int items) {
  msysv::World world(2);
  constexpr std::uint32_t kCapacity = 16;
  int id = world.shm(0)
               .Shmget(0xBEEF, mdsm::RingBuffer::FootprintBytes(kCapacity, padded),
                       /*create=*/true)
               .value();
  bool done = false;
  bool intact = true;
  msim::Time t_end = 0;

  world.kernel(0).Spawn("producer", Priority::kUser, [&, padded, item_cost_us,
                                                      items](Process* p) -> Task<> {
    auto& shm = world.shm(0);
    mmem::VAddr base = shm.Shmat(p, id).value();
    mdsm::RingBuffer rb(&shm, &world.kernel(0), base, kCapacity, padded);
    for (int i = 0; i < items; ++i) {
      co_await world.kernel(0).Compute(p, item_cost_us);  // produce the item
      co_await rb.Push(p, static_cast<std::uint32_t>(i * 31 + 7));
    }
  });
  world.kernel(1).Spawn("consumer", Priority::kUser, [&, padded, item_cost_us,
                                                      items](Process* p) -> Task<> {
    auto& shm = world.shm(1);
    mmem::VAddr base = shm.Shmat(p, id).value();
    mdsm::RingBuffer rb(&shm, &world.kernel(1), base, kCapacity, padded);
    for (int i = 0; i < items; ++i) {
      std::uint32_t v = co_await rb.Pop(p);
      if (v != static_cast<std::uint32_t>(i * 31 + 7)) {
        intact = false;
      }
      co_await world.kernel(1).Compute(p, item_cost_us);  // consume the item
    }
    t_end = world.sim().Now();
    done = true;
  });
  world.RunUntil([&] { return done; }, 900 * msim::kSecond);
  Outcome o;
  o.items_per_sec = done ? items / msim::ToSeconds(t_end) : 0;
  o.page_transfers = world.network().stats().large_packets;
  o.all_items_intact = done && intact;
  return o;
}

}  // namespace

int main() {
  std::printf("Producer/consumer over Mirage DSM (ring buffer from src/dsmlib)\n");
  std::printf("================================================================\n\n");
  constexpr int kItems = 60;
  mtrace::TextTable t({"item cost (ms)", "layout", "items/s", "page transfers", "FIFO intact"});
  for (int cost_ms : {0, 2, 5, 10}) {
    for (bool padded : {false, true}) {
      Outcome o = RunPipeline(padded, static_cast<msim::Duration>(cost_ms) * msim::kMillisecond,
                              kItems);
      t.AddRow({mtrace::TextTable::Int(cost_ms), padded ? "padded" : "compact",
                mtrace::TextTable::Num(o.items_per_sec, 1),
                mtrace::TextTable::Int(static_cast<long long>(o.page_transfers)),
                o.all_items_intact ? "yes" : "NO"});
    }
  }
  t.Print(std::cout);
  std::printf(
      "\nReading the table: with free items the two sides run in lock-step batches and\n"
      "the compact layout's single page is cheapest. Once items carry real work the\n"
      "sides overlap, the consumer's head updates start stealing the page the producer\n"
      "is filling, and padding the indexes onto their own pages (the paper's hot-spot\n"
      "separation, §8) wins decisively.\n");
  return 0;
}
