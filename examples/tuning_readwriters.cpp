// Tuning the time window Delta (paper §8).
//
// Walks the three regimes of Figure 8 with the conflicting read-writers
// application, demonstrates the paper's tuning guidance (err on the
// retention side for system throughput, the contention side for application
// throughput), and finishes with the dynamic-window policy the paper
// sketched but left disabled — showing it converging on its own.
#include <cstdio>
#include <iostream>

#include "src/mirage/adaptive_window.h"
#include "src/trace/table.h"
#include "src/workload/background.h"
#include "src/workload/readwriters.h"

namespace {

struct Sample {
  double app_ops = 0;
  double bg_units = 0;
};

Sample Run(msim::Duration window_us, bool adaptive = false,
           mirage::AdaptiveWindowPolicy* policy = nullptr) {
  msysv::WorldOptions opts;
  opts.protocol.default_window_us = window_us;
  msysv::World world(2, opts);
  if (adaptive && policy != nullptr) {
    world.engine(0)->options().dynamic_window = policy->Hook(&world.sim());
  }
  mwork::ReadWritersParams prm;
  prm.iterations = 50000;
  auto app = mwork::LaunchReadWriters(world, prm);
  mwork::BackgroundParams bg;
  bg.site = 0;
  auto background = mwork::LaunchBackground(world, bg);
  world.RunUntil([&] { return app->completed(); }, 600 * msim::kSecond);
  return Sample{app->OpsPerSecond(), background->UnitsPerSecond()};
}

}  // namespace

int main() {
  std::printf("Tuning the time window Delta (paper §8)\n");
  std::printf("=======================================\n\n");
  std::printf("Two processes at different sites decrement counters that share one page,\n");
  std::printf("while a background process computes at site 0.\n\n");

  mtrace::TextTable t({"Delta (ms)", "regime", "app ops/s", "background units/s"});
  struct Point {
    int ms;
    const char* regime;
  };
  for (Point pt : {Point{0, "contention: page ping-pongs"},
                   Point{30, "contention: conflicts dominate"},
                   Point{120, "plateau begins"},
                   Point{300, "plateau"},
                   Point{600, "plateau (paper's peak)"},
                   Point{1500, "retention: holder outlives demand"},
                   Point{3000, "retention: waits dominate"}}) {
    Sample s = Run(static_cast<msim::Duration>(pt.ms) * msim::kMillisecond);
    t.AddRow({mtrace::TextTable::Int(pt.ms), pt.regime, mtrace::TextTable::Num(s.app_ops, 0),
              mtrace::TextTable::Num(s.bg_units, 1)});
  }
  t.Print(std::cout);

  std::printf("\nThe paper's guidance, §8: to protect overall system throughput, err on the\n");
  std::printf("retention side (the falloff is gradual and other processes gain cycles);\n");
  std::printf("to protect this application's throughput, err on the contention side.\n\n");

  std::printf("Dynamic tuning (the §8 mechanism the paper left disabled):\n\n");
  mirage::AdaptiveWindowPolicy policy;
  Sample adaptive = Run(0, /*adaptive=*/true, &policy);
  std::printf("  starting from Delta=0, the policy converged to %.0f ms for the hot page\n",
              msim::ToMilliseconds(policy.CurrentWindow(1, 0)));
  std::printf("  (%d grows, %d shrinks) and achieved %.0f app ops/s — within the plateau\n",
              policy.Grows(1, 0), policy.Shrinks(1, 0), adaptive.app_ops);
  std::printf("  without any manual tuning.\n");
  return 0;
}
