// Quickstart: a two-site Mirage network sharing one System V segment.
//
// Demonstrates the public API end to end: build a World, create a segment
// with Shmget at one site (that site becomes the library site), attach it at
// both sites, and let a writer and a reader communicate through coherent
// distributed shared memory. Prints the component costs actually incurred.
#include <cstdio>

#include "src/sysv/world.h"

int main() {
  // Two VAX-class sites on an Ethernet, paper-calibrated cost model.
  msysv::World world(2);

  // Site 0 creates a 4 KB segment named by key 0x4242; it becomes the
  // segment's library site.
  int shmid = world.shm(0).Shmget(0x4242, 4096, /*create=*/true).value();
  std::printf("created segment shmid=%d (library at site 0)\n", shmid);

  bool writer_done = false;
  bool reader_done = false;
  std::uint32_t seen = 0;
  msim::Time read_latency = 0;

  // A writer process at site 0 stores a value.
  world.kernel(0).Spawn("writer", mos::Priority::kUser,
                        [&](mos::Process* p) -> msim::Task<> {
                          auto& shm = world.shm(0);
                          mmem::VAddr base = shm.Shmat(p, shmid).value();
                          co_await shm.WriteWord(p, base + 128, 2026);
                          std::printf("[%6.1f ms] site 0: wrote 2026\n",
                                      msim::ToMilliseconds(world.sim().Now()));
                          writer_done = true;
                        });

  // A reader process at site 1 polls until the value is visible. Its first
  // access page-faults; Mirage fetches the page across the network.
  world.kernel(1).Spawn("reader", mos::Priority::kUser,
                        [&](mos::Process* p) -> msim::Task<> {
                          auto& shm = world.shm(1);
                          mmem::VAddr base = shm.Shmat(p, shmid).value();
                          msim::Time t0 = world.sim().Now();
                          for (;;) {
                            seen = co_await shm.ReadWord(p, base + 128);
                            if (seen == 2026) {
                              break;
                            }
                            co_await world.kernel(1).Yield(p);
                          }
                          read_latency = world.sim().Now() - t0;
                          std::printf("[%6.1f ms] site 1: read %u\n",
                                      msim::ToMilliseconds(world.sim().Now()), seen);
                          reader_done = true;
                        });

  bool ok = world.RunUntil([&] { return writer_done && reader_done; }, 5 * msim::kSecond);
  const auto& net = world.network().stats();
  std::printf("\nsimulation %s at t=%.1f ms\n", ok ? "completed" : "TIMED OUT",
              msim::ToMilliseconds(world.sim().Now()));
  std::printf("value read at site 1: %u (coherent: %s)\n", seen,
              seen == 2026 ? "yes" : "NO");
  std::printf("network traffic: %llu packets (%llu short, %llu page-carrying)\n",
              static_cast<unsigned long long>(net.packets),
              static_cast<unsigned long long>(net.short_packets),
              static_cast<unsigned long long>(net.large_packets));
  std::printf("time from reader start until value visible: %.1f ms\n",
              msim::ToMilliseconds(read_latency));
  std::printf("(bench_component_timings reproduces the paper's clean 27.5 ms fetch)\n");
  return ok && seen == 2026 ? 0 : 1;
}
