// mcheck — exhaustive small-world checking of the Mirage protocol
// (DESIGN.md §11; EXPERIMENTS.md "Model checking").
//
// Modes:
//   mcheck suite                 per-PR gate: every scenario × variant,
//                                bounded DFS over delivery schedules
//   mcheck deep                  nightly sweep: bigger budgets + latency
//                                perturbation
//   mcheck explore <scenario>    focus the DFS on one scenario
//   mcheck replay <schedule>     re-run one recorded execution verbatim
//   mcheck mutation              seeded-bug smoke: assert each documented
//                                protocol mutation is caught
//   mcheck list                  print the scenario registry
//
// Exit status: 0 = clean (or every mutation caught), 1 = violation found
// (or a mutation slipped through), 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/check/explorer.h"
#include "src/check/scenario.h"

namespace {

using mcheck::ExploreOptions;
using mcheck::ExploreResult;
using mcheck::FindScenario;
using mcheck::ScenarioInfo;
using mcheck::ScenarioResult;
using mcheck::Scenarios;

struct Cli {
  std::string mode;
  std::string target;              // scenario name or schedule string
  int variant = -1;                // -1 = all
  msim::Duration eps_us = 0;
  int max_runs = -1;               // -1 = mode default
  int max_depth = -1;
  std::string mutation;            // mutation mode: restrict to one
  bool verbose = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: mcheck <suite|deep|explore|replay|mutation|list> [args]\n"
               "  mcheck suite   [--eps=US] [--runs=N] [--depth=D] [-v]\n"
               "  mcheck deep    [--eps=US] [--runs=N] [--depth=D] [-v]\n"
               "  mcheck explore <scenario> [--variant=K] [--eps=US] [--runs=N] "
               "[--depth=D]\n"
               "  mcheck replay  <scenario>/v<K>/e<US>/<pos>.<choice>,... "
               "[--mutate=NAME]\n"
               "  mcheck mutation [--name=NAME] [-v]\n"
               "  mcheck list\n");
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, long long* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = std::atoll(arg.c_str() + prefix.size());
  return true;
}

mirage::MutationOptions MutationByName(const std::string& name, bool* ok) {
  mirage::MutationOptions m;
  *ok = true;
  if (name == "quorum_off_by_one") {
    m.quorum_off_by_one = true;
  } else if (name == "skip_epoch_fence") {
    m.skip_epoch_fence = true;
  } else if (name == "drop_invalidate_ack") {
    m.drop_invalidate_ack = true;
  } else if (!name.empty() && name != "none") {
    *ok = false;
  }
  return m;
}

void PrintViolations(const std::vector<std::string>& violations) {
  for (const std::string& v : violations) {
    std::printf("    %s\n", v.c_str());
  }
}

// Explores every requested (scenario, variant); returns the failure count.
int RunSweep(const Cli& cli, const ExploreOptions& base) {
  int failures = 0;
  int total_runs = 0;
  for (const ScenarioInfo& info : Scenarios()) {
    if (!cli.target.empty() && cli.target != info.name) {
      continue;
    }
    for (int v = 0; v < info.variants; ++v) {
      if (cli.variant >= 0 && v != cli.variant) {
        continue;
      }
      ExploreResult r = mcheck::Explore(info, v, base);
      total_runs += r.runs;
      if (r.found_violation) {
        ++failures;
        std::printf("FAIL %s/v%d: %d schedules, violation found\n", info.name, v,
                    r.runs);
        std::printf("  replay: mcheck replay '%s'\n", r.schedule.c_str());
        PrintViolations(r.violations);
      } else if (cli.verbose) {
        std::printf("ok   %s/v%d: %d schedules, %llu choice points\n", info.name, v,
                    r.runs, static_cast<unsigned long long>(r.choice_points));
      }
    }
  }
  std::printf("%s: %d schedules explored, %d failing (scenario,variant) pairs\n",
              failures == 0 ? "CLEAN" : "VIOLATIONS", total_runs, failures);
  return failures;
}

int CmdSuiteOrDeep(const Cli& cli, bool deep) {
  ExploreOptions opts;
  // Message latencies are milliseconds (the paper's cost model), so the
  // perturbation window must be hundreds of microseconds before events
  // actually collide into choice points.
  opts.eps_us = cli.eps_us > 0 ? cli.eps_us : (deep ? 500 : 300);
  opts.max_runs = cli.max_runs > 0 ? cli.max_runs : (deep ? 400 : 48);
  opts.max_depth = cli.max_depth > 0 ? cli.max_depth : (deep ? 4 : 2);
  return RunSweep(cli, opts) == 0 ? 0 : 1;
}

int CmdReplay(const Cli& cli) {
  bool ok = false;
  mirage::MutationOptions mut = MutationByName(cli.mutation, &ok);
  if (!ok) {
    std::fprintf(stderr, "mcheck: unknown mutation '%s'\n", cli.mutation.c_str());
    return 2;
  }
  ScenarioResult r;
  if (!mcheck::Replay(cli.target, mut, &r)) {
    std::fprintf(stderr, "mcheck: bad schedule string '%s'\n", cli.target.c_str());
    return 2;
  }
  std::printf("replay %s: %s (%llu accesses, %llu messages)\n", cli.target.c_str(),
              r.failed() ? "VIOLATION" : "clean",
              static_cast<unsigned long long>(r.accesses),
              static_cast<unsigned long long>(r.messages));
  PrintViolations(r.violations);
  return r.failed() ? 1 : 0;
}

struct MutationCase {
  const char* name;
  // Scenarios most likely to catch it, tried in order; the sweep stops at
  // the first (scenario, variant, schedule) that reports a violation.
  std::vector<const char*> scenarios;
};

int CmdMutation(const Cli& cli) {
  const std::vector<MutationCase> cases = {
      {"drop_invalidate_ack", {"rw2", "wrw3"}},
      {"quorum_off_by_one", {"quorum3", "rejoin3"}},
      {"skip_epoch_fence", {"failover3"}},
  };
  int missed = 0;
  for (const MutationCase& mc : cases) {
    if (!cli.mutation.empty() && cli.mutation != mc.name) {
      continue;
    }
    bool ok = false;
    mirage::MutationOptions mut = MutationByName(mc.name, &ok);
    ExploreOptions opts;
    opts.eps_us = cli.eps_us > 0 ? cli.eps_us : 200;
    opts.max_runs = cli.max_runs > 0 ? cli.max_runs : 64;
    opts.max_depth = cli.max_depth > 0 ? cli.max_depth : 2;
    opts.mutations = mut;
    bool caught = false;
    for (const char* name : mc.scenarios) {
      const ScenarioInfo* info = FindScenario(name);
      if (info == nullptr) {
        continue;
      }
      for (int v = 0; v < info->variants && !caught; ++v) {
        ExploreResult r = mcheck::Explore(*info, v, opts);
        if (r.found_violation) {
          caught = true;
          std::printf("CAUGHT %s by %s/v%d after %d schedules\n", mc.name, name, v,
                      r.runs);
          std::printf("  replay: mcheck replay '%s' --mutate=%s\n",
                      r.schedule.c_str(), mc.name);
          if (cli.verbose) {
            PrintViolations(r.violations);
          }
        }
      }
      if (caught) {
        break;
      }
    }
    if (!caught) {
      ++missed;
      std::printf("MISSED %s: no scenario/schedule flagged it\n", mc.name);
    }
  }
  std::printf("%s\n", missed == 0 ? "all mutations caught" : "MUTATIONS MISSED");
  return missed == 0 ? 0 : 1;
}

int CmdList() {
  for (const ScenarioInfo& info : Scenarios()) {
    std::printf("%-10s %d sites, %2d variants — %s\n", info.name, info.sites,
                info.variants, info.description);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  Cli cli;
  cli.mode = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (arg == "-v" || arg == "--verbose") {
      cli.verbose = true;
    } else if (ParseFlag(arg, "variant", &n)) {
      cli.variant = static_cast<int>(n);
    } else if (ParseFlag(arg, "eps", &n)) {
      cli.eps_us = static_cast<msim::Duration>(n);
    } else if (ParseFlag(arg, "runs", &n)) {
      cli.max_runs = static_cast<int>(n);
    } else if (ParseFlag(arg, "depth", &n)) {
      cli.max_depth = static_cast<int>(n);
    } else if (arg.rfind("--mutate=", 0) == 0) {
      cli.mutation = arg.substr(std::strlen("--mutate="));
    } else if (arg.rfind("--name=", 0) == 0) {
      cli.mutation = arg.substr(std::strlen("--name="));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      cli.target = arg;
    }
  }
  if (cli.mode == "suite") {
    return CmdSuiteOrDeep(cli, false);
  }
  if (cli.mode == "deep") {
    return CmdSuiteOrDeep(cli, true);
  }
  if (cli.mode == "explore") {
    if (cli.target.empty() || FindScenario(cli.target) == nullptr) {
      std::fprintf(stderr, "mcheck: unknown scenario '%s'\n", cli.target.c_str());
      return 2;
    }
    ExploreOptions opts;
    opts.eps_us = cli.eps_us;
    opts.max_runs = cli.max_runs > 0 ? cli.max_runs : 128;
    opts.max_depth = cli.max_depth > 0 ? cli.max_depth : 3;
    return RunSweep(cli, opts) == 0 ? 0 : 1;
  }
  if (cli.mode == "replay") {
    if (cli.target.empty()) {
      return Usage();
    }
    return CmdReplay(cli);
  }
  if (cli.mode == "mutation") {
    return CmdMutation(cli);
  }
  if (cli.mode == "list") {
    return CmdList();
  }
  return Usage();
}
