// A command-line scenario driver: pick a workload, a site count, and a
// window Delta; get throughput, a per-site activity report, and optionally
// a full protocol trace. The Swiss-army knife for exploring the system.
//
// Usage:
//   scenario_runner [workload] [sites] [delta_ms] [options]
//     workload:  pingpong | readwriters | spinlock | matrix | dot | tsp | kvstore
//     sites:     2..12            (default 2)
//     delta_ms:  window in ms     (default 0)
//   options:
//     --no-yield      busy-wait instead of yield() in spin loops
//     --cost=NAME     cost-model preset: ethernet1989 (default, the paper's
//                     measured VAX/Ethernet constants) or rdma (a modern
//                     microsecond-scale interconnect ablation)
//     --zipf=S        kvstore key-popularity skew (0 = uniform)
//     --mix=G         kvstore get fraction (default 0.95)
//     --kvreplicas=R  kvstore data-level table copies (default 1)
//     --keys=N --rate=R --kvops=N
//                     kvstore key space, per-site arrival rate (/s), and
//                     generated ops per site
//     --json          emit a mirage-exp-v2 JSON report (single point) to
//                     stdout instead of the human-readable report, so fault
//                     scenarios feed the same aggregation pipeline as
//                     experiment_runner sweeps
//     --replicas=K    keep K quorum-replicated copies of every page (cold
//                     standbys of the last committed version); 1 = off
//     --trace         print the protocol event trace
//     --parallel-lib  enable concurrent library service of distinct pages
//     --baseline      run over the Li/Hudak protocol instead of Mirage
//     --loss=P        drop each frame with probability P (virtual circuits
//                     retransmit; 0 < P < 1)
//     --lib=S         pre-create the workload segment at site S, making it
//                     the library site (pingpong/readwriters); lets a crash
//                     plan kill a pure-controller library while every
//                     workload process survives and fails over
//     --crash=S@T     crash site S at T ms (permanent unless recovered)
//     --recover=T:SITE
//                     revive crashed site SITE at T ms with amnesia; it
//                     rejoins through the epoch-fenced re-admission
//                     handshake and is pulled back into the standby set
//                     (the report gains a rejoin line: downtime/MTTR,
//                     re-spreads, resurrected pages)
//     --pause=S@T1:T2 pause site S's inbound delivery from T1 to T2 ms
//     --cut=A-B@T1:T2 partition the A<->B link from T1 to T2 ms
//
// Any fault flag enables the protocol recovery timeouts (request backoff,
// ack timeouts, op deadline) and, when circuits are active, forced
// sequencing so healed partitions recover by retransmission. Post-run
// invariant checking scopes itself to live sites: a crashed site's frozen
// copies are not part of the system, and pages lost in recovery make no
// directory promises.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "src/baseline/li_engine.h"
#include "src/exp/report.h"
#include "src/trace/histogram.h"
#include "src/mirage/invariants.h"
#include "src/workload/dotproduct.h"
#include "src/workload/kvstore.h"
#include "src/workload/matrix.h"
#include "src/workload/pingpong.h"
#include "src/workload/readwriters.h"
#include "src/workload/spinlock.h"
#include "src/workload/tsp.h"

namespace {

struct Args {
  std::string workload = "pingpong";
  int sites = 2;
  int delta_ms = 0;
  bool yield = true;
  bool trace = false;
  bool parallel_lib = false;
  bool baseline = false;
  double loss = 0.0;
  int replicas = 1;
  bool json = false;
  int library_site = 0;
  double zipf_s = 0.0;
  double get_mix = 0.95;
  int kv_replicas = 1;
  std::uint32_t kv_keys = 192;
  double kv_rate = 120.0;
  std::uint32_t kv_ops = 200;
  std::string cost_preset = "ethernet1989";
  mfault::FaultPlan faults;
  bool faulted = false;
};

Args Parse(int argc, char** argv) {
  Args a;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s == "--no-yield") {
      a.yield = false;
    } else if (s == "--json") {
      a.json = true;
    } else if (s == "--trace") {
      a.trace = true;
    } else if (s == "--parallel-lib") {
      a.parallel_lib = true;
    } else if (s == "--baseline") {
      a.baseline = true;
    } else if (s.rfind("--cost=", 0) == 0) {
      a.cost_preset = s.substr(7);
      mnet::CostModel unused;
      if (!mnet::CostModel::FromName(a.cost_preset, &unused)) {
        std::fprintf(stderr, "unknown cost preset '%s' (ethernet1989, rdma)\n",
                     a.cost_preset.c_str());
        std::exit(2);
      }
    } else if (s.rfind("--loss=", 0) == 0) {
      a.loss = std::atof(s.c_str() + 7);
    } else if (s.rfind("--replicas=", 0) == 0) {
      a.replicas = std::atoi(s.c_str() + 11);
      if (a.replicas < 1 || a.replicas > 12) {
        std::fprintf(stderr, "--replicas must be in 1..12\n");
        std::exit(2);
      }
    } else if (s.rfind("--lib=", 0) == 0) {
      a.library_site = std::atoi(s.c_str() + 6);
    } else if (s.rfind("--zipf=", 0) == 0) {
      a.zipf_s = std::atof(s.c_str() + 7);
    } else if (s.rfind("--mix=", 0) == 0) {
      a.get_mix = std::atof(s.c_str() + 6);
      if (a.get_mix < 0.0 || a.get_mix > 1.0) {
        std::fprintf(stderr, "--mix must be in [0, 1]\n");
        std::exit(2);
      }
    } else if (s.rfind("--kvreplicas=", 0) == 0) {
      a.kv_replicas = std::atoi(s.c_str() + 13);
      if (a.kv_replicas < 1 || a.kv_replicas > 12) {
        std::fprintf(stderr, "--kvreplicas must be in 1..12\n");
        std::exit(2);
      }
    } else if (s.rfind("--keys=", 0) == 0) {
      a.kv_keys = static_cast<std::uint32_t>(std::atol(s.c_str() + 7));
    } else if (s.rfind("--rate=", 0) == 0) {
      a.kv_rate = std::atof(s.c_str() + 7);
    } else if (s.rfind("--kvops=", 0) == 0) {
      a.kv_ops = static_cast<std::uint32_t>(std::atol(s.c_str() + 8));
    } else if (s.rfind("--crash=", 0) == 0) {
      int site = 0;
      long t = 0;
      if (std::sscanf(s.c_str() + 8, "%d@%ld", &site, &t) != 2) {
        std::fprintf(stderr, "bad --crash, want S@Tms: %s\n", s.c_str());
        std::exit(2);
      }
      a.faults.CrashAt(t * msim::kMillisecond, site);
      a.faulted = true;
    } else if (s.rfind("--recover=", 0) == 0) {
      long t = 0;
      int site = 0;
      if (std::sscanf(s.c_str() + 10, "%ld:%d", &t, &site) != 2) {
        std::fprintf(stderr, "bad --recover, want Tms:SITE: %s\n", s.c_str());
        std::exit(2);
      }
      a.faults.RecoverAt(t * msim::kMillisecond, site);
      a.faulted = true;
    } else if (s.rfind("--pause=", 0) == 0) {
      int site = 0;
      long t1 = 0, t2 = 0;
      if (std::sscanf(s.c_str() + 8, "%d@%ld:%ld", &site, &t1, &t2) != 3 || t2 < t1) {
        std::fprintf(stderr, "bad --pause, want S@T1:T2 ms: %s\n", s.c_str());
        std::exit(2);
      }
      a.faults.PauseAt(t1 * msim::kMillisecond, site)
          .ResumeAt(t2 * msim::kMillisecond, site);
      a.faulted = true;
    } else if (s.rfind("--cut=", 0) == 0) {
      int sa = 0, sb = 0;
      long t1 = 0, t2 = 0;
      if (std::sscanf(s.c_str() + 6, "%d-%d@%ld:%ld", &sa, &sb, &t1, &t2) != 4 || t2 < t1) {
        std::fprintf(stderr, "bad --cut, want A-B@T1:T2 ms: %s\n", s.c_str());
        std::exit(2);
      }
      a.faults.PartitionAt(t1 * msim::kMillisecond, sa, sb)
          .HealAt(t2 * msim::kMillisecond, sa, sb);
      a.faulted = true;
    } else if (pos == 0) {
      a.workload = s;
      ++pos;
    } else if (pos == 1) {
      a.sites = std::atoi(s.c_str());
      ++pos;
    } else if (pos == 2) {
      a.delta_ms = std::atoi(s.c_str());
      ++pos;
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.sites < 1 || args.sites > 12) {
    std::fprintf(stderr, "sites must be in 1..12\n");
    return 2;
  }
  if (std::string err; !args.faults.Validate(&err)) {
    std::fprintf(stderr, "invalid fault plan: %s\n", err.c_str());
    return 2;
  }

  if (args.json) {
    // Machine-readable mode: run the identical scenario through the
    // experiment harness and emit a single-point mirage-exp-v2 report, so a
    // fault scenario lands in the same aggregation/diff pipeline as a sweep.
    if (!mexp::KnownWorkload(args.workload)) {
      std::fprintf(stderr, "unknown workload '%s'\n", args.workload.c_str());
      return 2;
    }
    mexp::ExperimentSpec spec;
    spec.name = "scenario:" + args.workload;
    spec.workload = args.workload;
    spec.sites = {args.sites};
    spec.delta_ms = {args.delta_ms};
    spec.loss = {args.loss};
    spec.replicas = {args.replicas};
    spec.use_yield = args.yield;
    spec.parallel_lib = args.parallel_lib;
    spec.baseline = args.baseline;
    spec.rounds = 40;  // the human-readable path's ping-pong round count
    spec.max_time_s = 900;
    spec.library_site = args.library_site;
    spec.zipf_s = {args.zipf_s};
    spec.get_mix = {args.get_mix};
    spec.kv_replicas = {args.kv_replicas};
    spec.kv_keys = args.kv_keys;
    spec.kv_arrival_per_s = args.kv_rate;
    spec.kv_ops_per_site = args.kv_ops;
    spec.cost_presets = {args.cost_preset};
    if (args.faulted) {
      mexp::FaultPlanSpec fp;
      fp.name = "scenario";
      fp.plan = args.faults;
      spec.fault_plans.push_back(std::move(fp));
    }
    mexp::ExperimentReport report = mexp::ExperimentRunner(1).Run(spec);
    mexp::ReportToJson(report).Dump(std::cout);
    std::cout << "\n";
    return report.failed_runs == 0 ? 0 : 1;
  }

  msysv::WorldOptions opts;
  if (!mnet::CostModel::FromName(args.cost_preset, &opts.costs)) {
    std::fprintf(stderr, "unknown cost preset '%s'\n", args.cost_preset.c_str());
    return 2;
  }
  opts.enable_trace = args.trace;
  opts.protocol.default_window_us =
      static_cast<msim::Duration>(args.delta_ms) * msim::kMillisecond;
  opts.protocol.parallel_page_ops = args.parallel_lib;
  opts.protocol.replicas = args.replicas;
  if (args.loss > 0.0) {
    opts.circuit = mnet::CircuitOptions{};
    opts.circuit->loss_probability = args.loss;
  }
  if (args.faulted) {
    opts.faults = args.faults;
    // Recovery timeouts: without these the paper's wait-forever defaults
    // would hang any client of a crashed library site.
    opts.protocol.request_timeout_us = 250 * msim::kMillisecond;
    opts.protocol.max_request_attempts = 5;
    opts.protocol.ack_timeout_us = 250 * msim::kMillisecond;
    opts.protocol.op_timeout_us = 2 * msim::kSecond;
    if (opts.circuit.has_value()) {
      opts.circuit->force_sequencing = true;  // heal recovers by retransmit
    }
  }
  if (args.baseline) {
    opts.backend_factory = [](mos::Kernel* k, mirage::SegmentRegistry* reg,
                              mtrace::Tracer* tr) -> std::unique_ptr<mmem::DsmBackend> {
      return std::make_unique<mbase::LiEngine>(k, reg, tr);
    };
  }
  msysv::World world(args.sites, opts);

  std::printf("scenario: %s, %d sites, Delta=%d ms%s%s%s", args.workload.c_str(),
              args.sites, args.delta_ms, args.yield ? "" : ", no yield",
              args.parallel_lib ? ", parallel library" : "",
              args.baseline ? ", Li/Hudak baseline" : "");
  if (args.cost_preset != "ethernet1989") {
    std::printf(", %s costs", args.cost_preset.c_str());
  }
  if (args.loss > 0.0) {
    std::printf(", %.0f%% frame loss", args.loss * 100.0);
  }
  if (args.replicas > 1) {
    std::printf(", %d replicas", args.replicas);
  }
  if (args.faulted) {
    std::printf(", %zu fault events", args.faults.events().size());
  }
  std::printf("\n\n");

  // Under faults a workload client may get EIDRM (library/clock site gone);
  // report it as a failed run instead of crashing the driver.
  auto run_workload = [&world](const std::function<bool()>& done) {
    try {
      return world.RunUntil(done, 900 * msim::kSecond);
    } catch (const msysv::PageFaultError& e) {
      std::printf("workload aborted: %s (%s)\n", e.what(), msysv::ShmErrName(e.err()));
      return false;
    }
  };

  // --lib=S: make site S the library by pre-creating the segment there; the
  // workload's own Shmget then finds the existing key.
  auto prehome = [&world, &args](std::uint64_t key, std::uint32_t bytes) {
    if (args.library_site > 0 && args.library_site < args.sites) {
      (void)world.shm(args.library_site).Shmget(key, bytes, /*create=*/true);
    }
  };

  bool ok = false;
  if (args.workload == "pingpong") {
    mwork::PingPongParams prm;
    prm.rounds = 40;
    prm.use_yield = args.yield;
    prm.site_b = args.sites >= 2 ? 1 : 0;
    prehome(prm.key, prm.segment_bytes);
    auto r = mwork::LaunchPingPong(world, prm);
    ok = run_workload([&] { return r->completed(); });
    std::printf("throughput: %.2f cycles/s over %d cycles\n\n", r->CyclesPerSecond(),
                r->cycles);
  } else if (args.workload == "readwriters") {
    mwork::ReadWritersParams prm;
    prm.iterations = 50000;
    prehome(prm.key, prm.segment_bytes);
    auto r = mwork::LaunchReadWriters(world, prm);
    ok = run_workload([&] { return r->completed(); });
    std::printf("throughput: %.0f read-write ops/s\n\n", r->OpsPerSecond());
  } else if (args.workload == "spinlock") {
    mwork::SpinlockParams prm;
    prm.use_yield = args.yield;
    auto r = mwork::LaunchSpinlock(world, prm);
    ok = run_workload([&] { return r->completed; });
    std::printf("throughput: %.2f critical sections/s (mutex %s)\n\n",
                r->SectionsPerSecond(),
                r->final_counter == static_cast<std::uint64_t>(2 * 30 * 4) ? "held" : "BROKEN");
  } else if (args.workload == "matrix") {
    mwork::MatrixParams prm;
    prm.n = 24;
    prm.workers = args.sites;
    auto r = mwork::LaunchMatrixMultiply(world, prm);
    ok = run_workload([&] { return r->completed; });
    std::printf("elapsed: %.3f s (%s)\n\n", r->ElapsedSeconds(),
                r->verified ? "verified" : "WRONG RESULT");
  } else if (args.workload == "dot") {
    mwork::DotProductParams prm;
    prm.length = 2048;
    prm.workers = args.sites;
    auto r = mwork::LaunchDotProduct(world, prm);
    ok = run_workload([&] { return r->completed; });
    std::printf("elapsed: %.3f s (%s)\n\n", r->ElapsedSeconds(),
                r->verified ? "verified" : "WRONG RESULT");
  } else if (args.workload == "tsp") {
    mwork::TspParams prm;
    prm.cities = 8;
    prm.workers = args.sites;
    auto r = mwork::LaunchTsp(world, prm);
    ok = run_workload([&] { return r->completed; });
    std::printf("elapsed: %.3f s, best tour %u (%s), %llu nodes\n\n", r->ElapsedSeconds(),
                r->best_cost, r->verified ? "optimal" : "SUBOPTIMAL",
                static_cast<unsigned long long>(r->nodes_expanded));
  } else if (args.workload == "kvstore") {
    mwork::KvStoreParams prm;
    prm.zipf_s = args.zipf_s;
    prm.get_mix = args.get_mix;
    prm.kv_replicas = static_cast<std::uint32_t>(args.kv_replicas);
    prm.keys = args.kv_keys;
    prm.arrival_per_s = args.kv_rate;
    prm.ops_per_site = args.kv_ops;
    auto r = mwork::LaunchKvStore(world, prm);
    ok = run_workload([&] { return r->completed(); });
    std::printf("throughput: %.1f ops/s (%llu gets, %llu sets; %llu misses, "
                "%llu torn, %llu integrity failures)\n",
                r->OpsPerSecond(), static_cast<unsigned long long>(r->gets()),
                static_cast<unsigned long long>(r->sets()),
                static_cast<unsigned long long>(r->misses()),
                static_cast<unsigned long long>(r->torn_reads()),
                static_cast<unsigned long long>(r->integrity_failures()));
    std::printf("request queues: peak %llu, mean depth %.2f\n",
                static_cast<unsigned long long>(r->queue_peak()), r->MeanQueueDepth());
    r->get_latency().Print(std::cout, "get latency (arrival to completion)");
    r->set_latency().Print(std::cout, "set latency (arrival to completion)");
    std::printf("\n");
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", args.workload.c_str());
    return 2;
  }

  world.PrintReport(std::cout);
  // Cross-site op-fault latency with percentiles, not just the per-site
  // means: merge every engine's histograms before printing.
  {
    mtrace::LatencyHistogram all_reads, all_writes;
    for (int s = 0; s < world.site_count(); ++s) {
      if (const mirage::Engine* e = world.engine(s)) {
        all_reads.Merge(e->read_fault_latency());
        all_writes.Merge(e->write_fault_latency());
      }
    }
    if (all_reads.count() > 0) {
      all_reads.Print(std::cout, "all-site read-fault latency");
    }
    if (all_writes.count() > 0) {
      all_writes.Print(std::cout, "all-site write-fault latency");
    }
  }
  if (!args.baseline) {
    // dsm doctor: validate the global protocol invariants post-run. Under
    // faults the checker is scoped to live sites — a crashed site's frozen
    // copies left the system, and the coherence and directory/image
    // agreement must still hold among the survivors (across any failover).
    std::vector<mirage::Engine*> engines;
    for (int s = 0; s < world.site_count(); ++s) {
      engines.push_back(world.engine(s));
    }
    world.RunFor(2 * msim::kSecond);  // quiesce
    mirage::InvariantChecker checker(engines);
    if (args.faulted) {
      checker.SetLiveness([&world](mnet::SiteId s) { return world.faults()->SiteUp(s); });
    }
    mirage::InvariantReport report = checker.CheckFull(world.registry());
    std::printf("\ninvariants: %s (%d pages checked)\n",
                report.ok() ? "OK" : "VIOLATED", report.pages_checked);
    for (const std::string& v : report.violations) {
      std::printf("  !! %s\n", v.c_str());
    }
  }
  if (const mnet::CircuitStats* cs = world.network().circuit_stats()) {
    std::printf("\ncircuits: %llu data frames, %llu dropped, %llu retransmits, "
                "%llu duplicates suppressed\n",
                static_cast<unsigned long long>(cs->data_frames_sent),
                static_cast<unsigned long long>(cs->frames_dropped),
                static_cast<unsigned long long>(cs->retransmits),
                static_cast<unsigned long long>(cs->duplicates_suppressed));
  }
  if (args.trace) {
    std::printf("\nprotocol trace:\n");
    world.tracer().Print(std::cout);
  }
  return ok ? 0 : 1;
}
