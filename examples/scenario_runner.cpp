// A command-line scenario driver: pick a workload, a site count, and a
// window Delta; get throughput, a per-site activity report, and optionally
// a full protocol trace. The Swiss-army knife for exploring the system.
//
// Usage:
//   scenario_runner [workload] [sites] [delta_ms] [options]
//     workload:  pingpong | readwriters | spinlock | matrix | dot | tsp
//     sites:     2..12            (default 2)
//     delta_ms:  window in ms     (default 0)
//   options:
//     --no-yield      busy-wait instead of yield() in spin loops
//     --trace         print the protocol event trace
//     --parallel-lib  enable concurrent library service of distinct pages
//     --baseline      run over the Li/Hudak protocol instead of Mirage
//     --loss=P        drop each frame with probability P (virtual circuits
//                     retransmit; 0 < P < 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "src/baseline/li_engine.h"
#include "src/mirage/invariants.h"
#include "src/workload/dotproduct.h"
#include "src/workload/matrix.h"
#include "src/workload/pingpong.h"
#include "src/workload/readwriters.h"
#include "src/workload/spinlock.h"
#include "src/workload/tsp.h"

namespace {

struct Args {
  std::string workload = "pingpong";
  int sites = 2;
  int delta_ms = 0;
  bool yield = true;
  bool trace = false;
  bool parallel_lib = false;
  bool baseline = false;
  double loss = 0.0;
};

Args Parse(int argc, char** argv) {
  Args a;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s == "--no-yield") {
      a.yield = false;
    } else if (s == "--trace") {
      a.trace = true;
    } else if (s == "--parallel-lib") {
      a.parallel_lib = true;
    } else if (s == "--baseline") {
      a.baseline = true;
    } else if (s.rfind("--loss=", 0) == 0) {
      a.loss = std::atof(s.c_str() + 7);
    } else if (pos == 0) {
      a.workload = s;
      ++pos;
    } else if (pos == 1) {
      a.sites = std::atoi(s.c_str());
      ++pos;
    } else if (pos == 2) {
      a.delta_ms = std::atoi(s.c_str());
      ++pos;
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.sites < 1 || args.sites > 12) {
    std::fprintf(stderr, "sites must be in 1..12\n");
    return 2;
  }
  msysv::WorldOptions opts;
  opts.enable_trace = args.trace;
  opts.protocol.default_window_us =
      static_cast<msim::Duration>(args.delta_ms) * msim::kMillisecond;
  opts.protocol.parallel_page_ops = args.parallel_lib;
  if (args.loss > 0.0) {
    opts.circuit = mnet::CircuitOptions{};
    opts.circuit->loss_probability = args.loss;
  }
  if (args.baseline) {
    opts.backend_factory = [](mos::Kernel* k, mirage::SegmentRegistry* reg,
                              mtrace::Tracer* tr) -> std::unique_ptr<mmem::DsmBackend> {
      return std::make_unique<mbase::LiEngine>(k, reg, tr);
    };
  }
  msysv::World world(args.sites, opts);

  std::printf("scenario: %s, %d sites, Delta=%d ms%s%s%s", args.workload.c_str(),
              args.sites, args.delta_ms, args.yield ? "" : ", no yield",
              args.parallel_lib ? ", parallel library" : "",
              args.baseline ? ", Li/Hudak baseline" : "");
  if (args.loss > 0.0) {
    std::printf(", %.0f%% frame loss", args.loss * 100.0);
  }
  std::printf("\n\n");

  bool ok = false;
  if (args.workload == "pingpong") {
    mwork::PingPongParams prm;
    prm.rounds = 40;
    prm.use_yield = args.yield;
    prm.site_b = args.sites >= 2 ? 1 : 0;
    auto r = mwork::LaunchPingPong(world, prm);
    ok = world.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
    std::printf("throughput: %.2f cycles/s over %d cycles\n\n", r->CyclesPerSecond(),
                r->cycles);
  } else if (args.workload == "readwriters") {
    mwork::ReadWritersParams prm;
    prm.iterations = 50000;
    auto r = mwork::LaunchReadWriters(world, prm);
    ok = world.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
    std::printf("throughput: %.0f read-write ops/s\n\n", r->OpsPerSecond());
  } else if (args.workload == "spinlock") {
    mwork::SpinlockParams prm;
    prm.use_yield = args.yield;
    auto r = mwork::LaunchSpinlock(world, prm);
    ok = world.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
    std::printf("throughput: %.2f critical sections/s (mutex %s)\n\n",
                r->SectionsPerSecond(),
                r->final_counter == static_cast<std::uint64_t>(2 * 30 * 4) ? "held" : "BROKEN");
  } else if (args.workload == "matrix") {
    mwork::MatrixParams prm;
    prm.n = 24;
    prm.workers = args.sites;
    auto r = mwork::LaunchMatrixMultiply(world, prm);
    ok = world.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
    std::printf("elapsed: %.3f s (%s)\n\n", r->ElapsedSeconds(),
                r->verified ? "verified" : "WRONG RESULT");
  } else if (args.workload == "dot") {
    mwork::DotProductParams prm;
    prm.length = 2048;
    prm.workers = args.sites;
    auto r = mwork::LaunchDotProduct(world, prm);
    ok = world.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
    std::printf("elapsed: %.3f s (%s)\n\n", r->ElapsedSeconds(),
                r->verified ? "verified" : "WRONG RESULT");
  } else if (args.workload == "tsp") {
    mwork::TspParams prm;
    prm.cities = 8;
    prm.workers = args.sites;
    auto r = mwork::LaunchTsp(world, prm);
    ok = world.RunUntil([&] { return r->completed; }, 900 * msim::kSecond);
    std::printf("elapsed: %.3f s, best tour %u (%s), %llu nodes\n\n", r->ElapsedSeconds(),
                r->best_cost, r->verified ? "optimal" : "SUBOPTIMAL",
                static_cast<unsigned long long>(r->nodes_expanded));
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", args.workload.c_str());
    return 2;
  }

  world.PrintReport(std::cout);
  if (!args.baseline) {
    // dsm doctor: validate the global protocol invariants post-run.
    std::vector<mirage::Engine*> engines;
    for (int s = 0; s < world.site_count(); ++s) {
      engines.push_back(world.engine(s));
    }
    world.RunFor(2 * msim::kSecond);  // quiesce
    mirage::InvariantChecker checker(engines);
    mirage::InvariantReport report = checker.CheckFull(world.registry());
    std::printf("\ninvariants: %s (%d pages checked)\n",
                report.ok() ? "OK" : "VIOLATED", report.pages_checked);
    for (const std::string& v : report.violations) {
      std::printf("  !! %s\n", v.c_str());
    }
  }
  if (const mnet::CircuitStats* cs = world.network().circuit_stats()) {
    std::printf("\ncircuits: %llu data frames, %llu dropped, %llu retransmits, "
                "%llu duplicates suppressed\n",
                static_cast<unsigned long long>(cs->data_frames_sent),
                static_cast<unsigned long long>(cs->frames_dropped),
                static_cast<unsigned long long>(cs->retransmits),
                static_cast<unsigned long long>(cs->duplicates_suppressed));
  }
  if (args.trace) {
    std::printf("\nprotocol trace:\n");
    world.tracer().Print(std::cout);
  }
  return ok ? 0 : 1;
}
