// The two hot-spot organizations of §8:
//
//   "In one approach, hot spots are separated from the remainder of the
//    segment data. A uniform Delta for each segment is a possibility in
//    this organization. In another approach all data is in one segment,
//    including the hot spots. In this organization, per-page Delta-s may
//    be useful."
//
// This example builds both: a hot ping-pong word plus a block of cold,
// read-mostly data, organized (a) as one segment with a uniform window,
// (b) as one segment with a per-page window on the hot page only, and
// (c) as two segments with per-segment windows. It measures hot-word
// throughput and cold-read latency under each organization.
#include <cstdio>
#include <iostream>

#include "src/trace/table.h"
#include "src/sysv/world.h"

namespace {

using mos::Priority;
using mos::Process;
using msim::kMillisecond;
using msim::kSecond;
using msim::Task;

struct Outcome {
  double hot_ops_per_sec = 0;
  double cold_reads_per_sec = 0;
};

// Site 1 and site 2 ping-pong increments on the hot word; site 1 also
// refreshes one cold page per round (so the cold data stays live), while
// site 2 streams reads over the cold block. Under a uniform segment window
// every cold refetch waits out the hot page's Delta; the per-page and
// per-segment organizations leave the cold pages window-free.
Outcome RunScenario(msysv::World& world, int hot_shmid, int cold_shmid,
                    int cold_first_page, int cold_pages) {
  auto hot_ops = std::make_shared<int>(0);
  auto cold_reads = std::make_shared<int>(0);
  int finished = 0;
  msim::Time t_end = 0;

  for (int s : {1, 2}) {
    world.kernel(s).Spawn(
        "hot-" + std::to_string(s), Priority::kUser,
        [&world, s, hot_shmid, cold_shmid, cold_first_page, cold_pages, hot_ops,
         &finished, &t_end](Process* p) -> Task<> {
          auto& shm = world.shm(s);
          mmem::VAddr hot = shm.Shmat(p, hot_shmid).value();
          mmem::VAddr cold = hot;
          if (cold_shmid != hot_shmid) {
            cold = shm.Shmat(p, cold_shmid).value();
          }
          // Increment when the word's parity is ours: a paced ping-pong.
          for (int i = 0; i < 30; ++i) {
            for (;;) {
              std::uint32_t v = co_await shm.ReadWord(p, hot);
              if (static_cast<int>(v % 2) == s - 1) {
                co_await shm.WriteWord(p, hot, v + 1);
                ++*hot_ops;
                break;
              }
              co_await world.kernel(s).Yield(p);
            }
            if (s == 1) {
              // Refresh one cold page per round: the cold data stays live.
              int pg = cold_first_page + (i % cold_pages);
              co_await shm.WriteWord(
                  p, cold + static_cast<mmem::VAddr>(pg) * mmem::kPageSize + 8,
                  static_cast<std::uint32_t>(i));
            }
          }
          ++finished;
          t_end = world.sim().Now();
        });
  }
  world.kernel(2).Spawn("cold-reader", Priority::kUser,
                        [&world, cold_shmid, cold_first_page, cold_pages, cold_reads,
                         &finished](Process* p) -> Task<> {
                          auto& shm = world.shm(2);
                          mmem::VAddr base = shm.Shmat(p, cold_shmid).value();
                          for (;;) {
                            if (finished >= 2) {
                              break;
                            }
                            for (int pg = cold_first_page;
                                 pg < cold_first_page + cold_pages; ++pg) {
                              (void)co_await shm.ReadWord(
                                  p, base + static_cast<mmem::VAddr>(pg) * mmem::kPageSize);
                              ++*cold_reads;
                            }
                            co_await world.kernel(2).Compute(p, 2 * kMillisecond);
                          }
                        });
  world.RunUntil([&] { return finished >= 2; }, 600 * kSecond);
  Outcome o;
  double secs = msim::ToSeconds(t_end);
  o.hot_ops_per_sec = secs > 0 ? *hot_ops / secs : 0;
  o.cold_reads_per_sec = secs > 0 ? *cold_reads / secs : 0;
  return o;
}

}  // namespace

int main() {
  std::printf("Hot-spot organizations (paper §8)\n");
  std::printf("=================================\n\n");
  std::printf("A hot ping-pong word shares an application with 7 pages of cold,\n");
  std::printf("read-mostly data. Three organizations of the same data:\n\n");
  const msim::Duration kHotWindow = 300 * kMillisecond;
  constexpr int kColdPages = 7;

  mtrace::TextTable t({"organization", "hot ops/s", "cold reads/s"});

  {
    // (a) One segment, uniform window: the cold pages inherit the hot
    // page's window, so the streaming reader's faults wait out windows.
    msysv::WorldOptions opts;
    opts.protocol.default_window_us = kHotWindow;
    msysv::World w(3, opts);
    int id = w.shm(0).Shmget(1, (1 + kColdPages) * mmem::kPageSize, true).value();
    Outcome o = RunScenario(w, id, id, /*cold_first_page=*/1, kColdPages);
    t.AddRow({"one segment, uniform Delta", mtrace::TextTable::Num(o.hot_ops_per_sec, 1),
              mtrace::TextTable::Num(o.cold_reads_per_sec, 1)});
  }
  {
    // (b) One segment, per-page windows: only the hot page carries Delta.
    msysv::WorldOptions opts;
    opts.protocol.default_window_us = kHotWindow;
    msysv::World w(3, opts);
    int id = w.shm(0).Shmget(1, (1 + kColdPages) * mmem::kPageSize, true).value();
    for (int pg = 1; pg <= kColdPages; ++pg) {
      w.engine(0)->SetPageWindow(id, pg, 0);
    }
    Outcome o = RunScenario(w, id, id, /*cold_first_page=*/1, kColdPages);
    t.AddRow({"one segment, per-page Delta", mtrace::TextTable::Num(o.hot_ops_per_sec, 1),
              mtrace::TextTable::Num(o.cold_reads_per_sec, 1)});
  }
  {
    // (c) Two segments: the hot word in its own small windowed segment, the
    // cold data in a window-free segment.
    msysv::WorldOptions opts;
    opts.protocol.default_window_us = 0;
    msysv::World w(3, opts);
    int hot_id = w.shm(0).Shmget(1, mmem::kPageSize, true).value();
    int cold_id = w.shm(0).Shmget(2, kColdPages * mmem::kPageSize, true).value();
    w.engine(0)->SetSegmentWindow(hot_id, kHotWindow);
    Outcome o = RunScenario(w, hot_id, cold_id, /*cold_first_page=*/0, kColdPages);
    t.AddRow({"two segments, per-segment Delta", mtrace::TextTable::Num(o.hot_ops_per_sec, 1),
              mtrace::TextTable::Num(o.cold_reads_per_sec, 1)});
  }
  t.Print(std::cout);
  std::printf("\nBoth refinements keep the hot word protected while freeing the cold pages\n");
  std::printf("from pointless window waits — the choice between them is administrative\n");
  std::printf("(per-page tuning vs. data placement), exactly as §8 frames it.\n");
  return 0;
}
